//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate
//! re-implements the small API subset the workspace uses: the
//! [`Rng`]/[`RngCore`] traits (`gen`, `gen_range`, `gen_bool`,
//! `fill_bytes`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — here a xoshiro256++ generator seeded through
//! splitmix64. The statistical quality is ample for simulation and
//! tests; the stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`, which only matters to exact-value golden tests (ours are
//! generated against this implementation).

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

// Narrow draws take the HIGH bits of the 64-bit word: xoshiro256++'s
// lowest bit carries faint linear structure that structured draw
// patterns can surface (observed as a ~2% bias in interleaved
// coin-flip/encrypt sequences).
macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                const BITS: u32 = <$t>::BITS;
                if BITS >= 64 {
                    rng.next_u64() as $t
                } else {
                    (rng.next_u64() >> (64 - BITS)) as $t
                }
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Sign bit, not the (weaker) low bit.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift maps a 64-bit draw onto [0, span).
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + off as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + off as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`. Panics on empty ranges.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator whose stream follows another generator's
    /// output (used to fork independent generators).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "{mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
