//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, numeric range
//! strategies, `collection::vec`, and the `prop_assert*`/`prop_assume!`
//! macros. Sampling is deterministic: each test function derives its
//! RNG seed from its own name, so failures reproduce exactly.

use rand::rngs::StdRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u128>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let m: f64 = rng.gen();
            let e = rng.gen_range(-64..64i32);
            (m - 0.5) * (2f64).powi(e)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A strategy that always yields a clone of one value.
    pub struct JustStrategy<T: Clone>(pub T);

    impl<T: Clone> Strategy for JustStrategy<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_for_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuples!((S0.0, S1.1)(S0.0, S1.1, S2.2)(S0.0, S1.1, S2.2, S3.3)(
        S0.0, S1.1, S2.2, S3.3, S4.4
    ));
}

/// Returns the canonical strategy for `T` (uniform over its values).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// A strategy that always yields a clone of `value`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> strategy::JustStrategy<T> {
    strategy::JustStrategy(value)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`] of `element` values with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases: enough to exercise the space while keeping the suite
    /// fast on the heavyweight crypto properties.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::StdRng;
    use rand::SeedableRng;

    /// Derives a deterministic RNG from a test function's name.
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Defines property tests. Each `arg in strategy` binding is sampled
/// deterministically per case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    // prop_assume! exits this closure early to discard
                    // the case; prop_assert* panic like assert*.
                    let __keep = move || -> bool { $body true };
                    if !__keep() {
                        continue;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return false;
        }
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner;
    pub use crate::{any, Just, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u64..20, y in -4i32..=4, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn mapped_strategy(v in (any::<u8>()).prop_map(|b| b as u32 + 1)) {
            prop_assert!(v >= 1);
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
