//! Workspace-local stand-in for the `bytes` crate: [`Bytes`] (a cheaply
//! cloneable, sliceable byte view), [`BytesMut`] (a growable buffer),
//! and the [`Buf`]/[`BufMut`] cursor traits, all big-endian like
//! upstream.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte string.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice into a new byte string.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a subrange, sharing the underlying storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. All integer reads are big-endian.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor over a growable byte sink. All integer writes are
/// big-endian.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share_storage() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdead_beef);
        buf.put_u16(7);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        let view = b.slice(..4);
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u16(), 7);
        assert_eq!(b.as_ref(), b"xyz");
        assert_eq!(view.as_ref(), &0xdead_beefu32.to_be_bytes());
    }

    #[test]
    fn equality_and_static() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), b"hello");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_checked() {
        let mut b = Bytes::from_static(b"ab");
        b.advance(3);
    }
}
