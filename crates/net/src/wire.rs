//! The wire-real fabric: the workspace frame codec on std TCP loopback
//! sockets, behind the same [`Fabric`] trait as the in-process
//! [`Switchboard`](crate::transport::Switchboard).
//!
//! # Architecture
//!
//! Registration binds one `TcpListener` per party on `127.0.0.1:0` and
//! spawns an acceptor thread for it. Sending dials **one TCP
//! connection per ordered `(from, to)` link** on first use — mirroring
//! the per-link mailbox state of the in-process fabric — and announces
//! the dialing party's id as the connection's first blob. Each accepted
//! connection gets its own reader thread that reassembles the byte
//! stream and forwards `(sender, frame-bytes)` into the recipient's
//! inbox channel. One party instance is pinned per thread (or per
//! process): a party's endpoint is its only handle on its sockets.
//!
//! **Per-sender FIFO** — the only ordering the [`Fabric`] contract
//! grants — holds because each ordered link is exactly one TCP
//! connection (in-order byte stream) drained by exactly one reader
//! thread into one channel. Cross-link arrival order is TCP timing and
//! scheduler whim; rounds over this backend therefore run threaded,
//! with blocking receives, exactly like a real deployment.
//!
//! # Stream framing
//!
//! Every message on a connection is a length-prefixed blob: a `u32`
//! big-endian byte length followed by that many bytes. The first blob
//! is the dialing party's UTF-8 id (the handshake); every later blob is
//! one frame's wire image, checksummed by the inner frame codec
//! itself. [`StreamDecoder`] reassembles blobs from arbitrary read
//! chunkings; a stream that ends mid-blob is a truncation
//! ([`TransportError::Wire`] with [`WireError::Truncated`]), never a
//! panic.
//!
//! # Determinism and shaping
//!
//! Fault schedules reuse the in-process fabric's per-link RNGs (seeded
//! from `(seed, from, to)`), so a given link sees the identical
//! drop/duplicate/corrupt schedule on either backend. The optional
//! [`WireShape`] delays each send by a time computed purely from the
//! configuration and the frame length — no clock is read — so WAN-like
//! wall-clock is measurable via the profiling spans and the per-link
//! byte counters while transcripts stay byte-identical to the
//! in-process fabric.
//!
//! # Threat model: what fault injection means on the wire path
//!
//! Faults are applied **sender-side, before the bytes reach the
//! socket**, modelling a lossy/adversarial network rather than a
//! compromised TCP stack: a *drop* means the frame is never written, a
//! *duplicate* writes the frame twice onto the same connection, and a
//! *corrupt* flips one bit of the wire image so the receiver's
//! checksum rejects it on parse — the same observable outcomes as on
//! the in-process fabric, under the same per-link schedule. What the
//! wire path cannot model identically is *failure detection*: a
//! departed peer's socket buffers writes until TCP notices, so
//! [`TransportError::Disconnected`] surfaces asynchronously here where
//! the in-process fabric fails synchronously. Protocols already treat
//! missing messages as an abort (no retransmission layer), so the
//! degradation mode is the same — only its latency differs.

use crate::frame::{Frame, WireError};
use crate::transport::{
    link_seed, roll_faults, Endpoint, Fabric, FaultConfig, FaultStats, LinkLedger, LinkStats,
    PartyId, RecvPort, SendPort, TransportError, Verdict, WireMessage, WireShape,
};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use pm_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on a single length-prefixed blob (16 MiB). A prefix
/// beyond this is stream desync or hostile input, not a real frame.
pub const MAX_BLOB_LEN: usize = 16 << 20;

/// Encodes one blob for the stream: `u32` big-endian length, then the
/// bytes.
pub fn encode_blob(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + data.len());
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(data);
    out
}

/// Reassembles length-prefixed blobs from an arbitrarily chunked byte
/// stream. Feed whatever each `read` returned to [`StreamDecoder::push`];
/// call [`StreamDecoder::finish`] at end-of-stream to detect a
/// truncated final blob.
#[derive(Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Consumes the next chunk of stream bytes, returning every blob it
    /// completed (possibly none). Chunk boundaries are arbitrary: a
    /// blob may arrive across many pushes, and one push may complete
    /// many blobs.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        let mut cursor = 0usize;
        while self.buf.len() - cursor >= 4 {
            let len = u32::from_be_bytes([
                self.buf[cursor],
                self.buf[cursor + 1],
                self.buf[cursor + 2],
                self.buf[cursor + 3],
            ]) as usize;
            if len > MAX_BLOB_LEN {
                return Err(TransportError::Wire(WireError::Invalid(
                    "wire blob length exceeds bound",
                )));
            }
            if self.buf.len() - cursor < 4 + len {
                break;
            }
            out.push(self.buf[cursor + 4..cursor + 4 + len].to_vec());
            cursor += 4 + len;
        }
        self.buf.drain(..cursor);
        Ok(out)
    }

    /// End-of-stream check: leftover bytes mean the final blob was
    /// truncated mid-flight.
    pub fn finish(&self) -> Result<(), TransportError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(TransportError::Wire(WireError::Truncated))
        }
    }
}

/// One registered party's socket-side state. The inbox sender is held
/// only to keep the endpoint's channel open while the party is
/// registered — even if its acceptor thread exits early, a registered
/// party's receiver must block rather than report Disconnected.
struct PartyRecord {
    addr: SocketAddr,
    _inbox_keepalive: Sender<WireMessage>,
    stop: Arc<AtomicBool>,
}

/// One dialed `(from, to)` link: its connection and its fault RNG.
struct LinkConn {
    stream: Mutex<TcpStream>,
    rng: Mutex<StdRng>,
}

struct WireInner {
    shape: WireShape,
    faults: FaultConfig,
    ledger: LinkLedger,
    registry: Mutex<BTreeMap<PartyId, PartyRecord>>,
    conns: Mutex<BTreeMap<(PartyId, PartyId), Arc<LinkConn>>>,
    dialed: AtomicU64,
    accepted: Arc<AtomicU64>,
}

impl Drop for WireInner {
    /// Mirrors the in-process fabric's publish-on-last-drop contract,
    /// adding the wire-only `net.wire.*` family. Acceptor threads are
    /// told to stop; reader threads exit when the dialed connections
    /// drop with this struct.
    fn drop(&mut self) {
        for record in self.registry.lock().values() {
            record.stop.store(true, Ordering::Relaxed);
        }
        self.ledger.publish_metrics(&[
            ("net.wire.conns.dialed", self.dialed.load(Ordering::Relaxed)),
            (
                "net.wire.conns.accepted",
                self.accepted.load(Ordering::Relaxed),
            ),
        ]);
    }
}

/// The socket-backed [`Fabric`]: real TCP loopback links carrying the
/// workspace frame codec, with the same per-link fault schedules and
/// the same shared metrics as the in-process fabric. Build one via
/// [`crate::transport::FabricChoice::Wire`] or the constructors here.
#[derive(Clone)]
pub struct WireFabric {
    inner: Arc<WireInner>,
}

impl Default for WireFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl WireFabric {
    /// A lossless, unshaped wire fabric with a detached recorder.
    pub fn new() -> WireFabric {
        WireFabric::with_shape(WireShape::default(), FaultConfig::none())
    }

    /// A wire fabric with shaping and fault injection, detached recorder.
    pub fn with_shape(shape: WireShape, faults: FaultConfig) -> WireFabric {
        WireFabric::with_shape_obs(shape, faults, Recorder::new())
    }

    /// A wire fabric publishing its counters into `recorder` when the
    /// last handle (fabric clones and endpoints alike) drops.
    pub fn with_shape_obs(shape: WireShape, faults: FaultConfig, recorder: Recorder) -> WireFabric {
        WireFabric {
            inner: Arc::new(WireInner {
                shape,
                faults,
                ledger: LinkLedger::new(recorder),
                registry: Mutex::new(BTreeMap::new()),
                conns: Mutex::new(BTreeMap::new()),
                dialed: AtomicU64::new(0),
                accepted: Arc::new(AtomicU64::new(0)),
            }),
        }
    }

    fn register_endpoint(&self, id: PartyId) -> Endpoint {
        // Loopback bind/configure failure is environment-fatal (out of
        // ports or no loopback interface), not a protocol condition any
        // caller can handle — hence the panic allowances below.
        let listener = TcpListener::bind(("127.0.0.1", 0))
            // lint:allow(panic) environment-fatal, see above
            .expect("bind wire fabric listener on loopback");
        let addr = listener
            .local_addr()
            // lint:allow(panic) see the bind note above
            .expect("read wire fabric listener address");
        listener
            .set_nonblocking(true)
            // lint:allow(panic) see the bind note above
            .expect("configure wire fabric listener");
        let (inbox_tx, inbox_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        {
            let mut registry = self.inner.registry.lock();
            if let Some(old) = registry.insert(
                id.clone(),
                PartyRecord {
                    addr,
                    _inbox_keepalive: inbox_tx.clone(),
                    stop: Arc::clone(&stop),
                },
            ) {
                // Re-registration replaces the previous endpoint: its
                // acceptor stops and its inbox sender drops here.
                old.stop.store(true, Ordering::Relaxed);
            }
        }
        let accepted = Arc::clone(&self.inner.accepted);
        std::thread::spawn(move || accept_loop(listener, inbox_tx, stop, accepted));
        Endpoint::from_parts(
            id,
            Arc::new(self.clone()),
            Box::new(WireRecv { rx: inbox_rx }),
        )
    }
}

/// Accepts connections for one party until told to stop, spawning a
/// reader thread per connection. The listener is polled non-blocking so
/// the stop flag is honored promptly even with no inbound traffic.
fn accept_loop(
    listener: TcpListener,
    inbox_tx: Sender<WireMessage>,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                accepted.fetch_add(1, Ordering::Relaxed);
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let tx = inbox_tx.clone();
                std::thread::spawn(move || read_loop(stream, tx));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    }
}

/// Drains one connection: handshake blob names the sender, every later
/// blob is one frame's wire image forwarded to the recipient's inbox.
/// Exits on stream close, decode error, or a gone receiver.
fn read_loop(mut stream: TcpStream, tx: Sender<WireMessage>) {
    let mut decoder = StreamDecoder::new();
    let mut from: Option<PartyId> = None;
    let mut buf = [0u8; 4096];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        let blobs = match decoder.push(&buf[..n]) {
            Ok(blobs) => blobs,
            Err(_) => return, // desynced stream: drop the connection
        };
        for blob in blobs {
            match &from {
                None => match String::from_utf8(blob) {
                    Ok(name) => from = Some(PartyId(name)),
                    Err(_) => return, // malformed handshake
                },
                Some(sender) => {
                    if tx.send((sender.clone(), blob)).is_err() {
                        return; // receiver endpoint is gone
                    }
                }
            }
        }
    }
}

struct WireRecv {
    rx: Receiver<WireMessage>,
}

impl RecvPort for WireRecv {
    fn recv_wire(&self) -> Result<WireMessage, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn try_recv_wire(&self) -> Result<WireMessage, TransportError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => TransportError::Empty,
            TryRecvError::Disconnected => TransportError::Disconnected,
        })
    }

    fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl SendPort for WireFabric {
    fn deliver(&self, from: &PartyId, to: &PartyId, frame: &Frame) -> Result<(), TransportError> {
        let inner = &*self.inner;
        let mut wire = frame.to_wire().to_vec();
        // Accounting happens at the send site, before delivery can
        // fail — the same order as the in-process fabric, which is
        // what keeps the shared counters backend-invariant.
        let record = inner.ledger.tally_send(from, to, &wire);
        let addr = inner
            .registry
            .lock()
            .get(to)
            .map(|r| r.addr)
            .ok_or_else(|| TransportError::UnknownParty(to.0.clone()))?;
        let conn = {
            let mut conns = inner.conns.lock();
            match conns.get(&(from.clone(), to.clone())) {
                Some(conn) => Arc::clone(conn),
                None => {
                    // First frame on this ordered link: dial, announce
                    // the sender, seed the link's fault RNG exactly as
                    // the in-process fabric would.
                    let stream =
                        TcpStream::connect(addr).map_err(|_| TransportError::Disconnected)?;
                    let _ = stream.set_nodelay(true);
                    inner.dialed.fetch_add(1, Ordering::Relaxed);
                    let conn = Arc::new(LinkConn {
                        stream: Mutex::new(stream),
                        rng: Mutex::new(StdRng::seed_from_u64(link_seed(
                            inner.faults.seed,
                            from,
                            to,
                        ))),
                    });
                    conn.stream
                        .lock()
                        .write_all(&encode_blob(from.0.as_bytes()))
                        .map_err(|_| TransportError::Disconnected)?;
                    conns.insert((from.clone(), to.clone()), Arc::clone(&conn));
                    conn
                }
            }
        };
        let verdict = {
            let mut rng = conn.rng.lock();
            roll_faults(&inner.faults, &mut rng, &mut wire, inner.ledger.stats())
        };
        LinkLedger::tally_verdict(&record, &verdict);
        let copies = match verdict {
            Verdict::Drop => return Ok(()), // modelled loss: never written
            Verdict::Deliver { copies, .. } => copies,
        };
        let blob = encode_blob(&wire);
        let delay = inner.shape.delay_ms(wire.len());
        let mut stream = conn.stream.lock();
        for _ in 0..copies {
            if delay > 0 {
                // Deterministic shaping: a pure function of config and
                // frame length, applied while holding the link's
                // stream lock so the link's serialization time is
                // modelled, not just a fixed offset.
                std::thread::sleep(Duration::from_millis(delay));
            }
            stream
                .write_all(&blob)
                .map_err(|_| TransportError::Disconnected)?;
        }
        stream.flush().map_err(|_| TransportError::Disconnected)
    }
}

impl Fabric for WireFabric {
    fn register(&self, id: PartyId) -> Endpoint {
        self.register_endpoint(id)
    }

    fn deregister(&self, id: &PartyId) {
        if let Some(record) = self.inner.registry.lock().remove(id) {
            record.stop.store(true, Ordering::Relaxed);
        }
    }

    fn parties(&self) -> Vec<PartyId> {
        self.inner.registry.lock().keys().cloned().collect()
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.ledger.fault_stats()
    }

    fn link_stats(&self) -> Vec<((PartyId, PartyId), LinkStats)> {
        self.inner.ledger.link_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Switchboard;
    use bytes::Bytes;

    fn frame(t: u16, body: &'static [u8]) -> Frame {
        Frame::new(t, Bytes::from_static(body))
    }

    #[test]
    fn decoder_reassembles_across_arbitrary_chunks() {
        let blobs: Vec<Vec<u8>> = vec![b"one".to_vec(), vec![], b"three!".to_vec()];
        let mut stream = Vec::new();
        for b in &blobs {
            stream.extend_from_slice(&encode_blob(b));
        }
        // Byte-at-a-time is the worst chunking.
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for byte in &stream {
            got.extend(dec.push(std::slice::from_ref(byte)).unwrap());
        }
        assert_eq!(got, blobs);
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_flags_truncated_tail() {
        let blob = encode_blob(b"whole");
        for cut in 1..blob.len() {
            let mut dec = StreamDecoder::new();
            assert!(dec.push(&blob[..cut]).unwrap().is_empty(), "cut={cut}");
            assert_eq!(
                dec.finish().unwrap_err(),
                TransportError::Wire(WireError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn decoder_rejects_absurd_length_prefix() {
        let mut dec = StreamDecoder::new();
        let bad = (MAX_BLOB_LEN as u32 + 1).to_be_bytes();
        assert!(matches!(
            dec.push(&bad).unwrap_err(),
            TransportError::Wire(WireError::Invalid(_))
        ));
    }

    #[test]
    fn wire_send_recv_round_trip() {
        let fabric = WireFabric::new();
        let a = fabric.register(PartyId::new("a"));
        let b = fabric.register(PartyId::new("b"));
        a.send(b.id(), frame(7, b"over tcp")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from.as_str(), "a");
        assert_eq!(env.frame.msg_type, 7);
        assert_eq!(env.frame.payload.as_ref(), b"over tcp");
    }

    #[test]
    fn wire_preserves_per_sender_fifo() {
        let fabric = WireFabric::new();
        let a = fabric.register(PartyId::new("a"));
        let b = fabric.register(PartyId::new("b"));
        for i in 0..50u16 {
            a.send(b.id(), frame(i, b"seq")).unwrap();
        }
        for i in 0..50u16 {
            assert_eq!(b.recv().unwrap().frame.msg_type, i);
        }
    }

    #[test]
    fn wire_unknown_party_errors() {
        let fabric = WireFabric::new();
        let a = fabric.register(PartyId::new("a"));
        assert_eq!(
            a.send(&PartyId::new("ghost"), frame(1, b"x")).unwrap_err(),
            TransportError::UnknownParty("ghost".into())
        );
    }

    #[test]
    fn wire_parties_listing_sorted() {
        let fabric = WireFabric::new();
        let _ts = fabric.register(PartyId::new("ts"));
        let _dc = fabric.register(PartyId::new("dc-1"));
        assert_eq!(
            fabric.parties(),
            vec![PartyId::new("dc-1"), PartyId::new("ts")]
        );
        fabric.deregister(&PartyId::new("dc-1"));
        assert_eq!(fabric.parties(), vec![PartyId::new("ts")]);
    }

    #[test]
    fn wire_faults_follow_the_per_link_schedule() {
        // The same (seed, from, to) link must see the same fault
        // schedule on the wire fabric as on the in-process fabric.
        let faults = FaultConfig {
            drop_chance: 0.5,
            seed: 11,
            ..Default::default()
        };
        let run_wire = || {
            let fabric = WireFabric::with_shape(WireShape::default(), faults);
            let a = fabric.register(PartyId::new("a"));
            let b = fabric.register(PartyId::new("b"));
            for i in 0..50u16 {
                a.send(b.id(), frame(i, b"x")).unwrap();
            }
            let mut got = Vec::new();
            // Blocking recv until the expected number of survivors
            // arrived: the sender-side stats say how many were written.
            let expected = fabric.fault_stats().sent - fabric.fault_stats().dropped;
            for _ in 0..expected {
                got.push(b.recv().unwrap().frame.msg_type);
            }
            got
        };
        let in_process = {
            let board = Switchboard::with_faults(faults);
            let a = board.register("a");
            let b = board.register("b");
            for i in 0..50u16 {
                a.send(b.id(), frame(i, b"x")).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(env) = b.try_recv() {
                got.push(env.frame.msg_type);
            }
            got
        };
        assert_eq!(run_wire(), in_process);
        assert_eq!(run_wire(), in_process);
    }

    #[test]
    fn wire_counters_match_in_process_under_lossless_schedule() {
        // Same sends on both backends → identical FaultStats and
        // per-link LinkStats, including the transcript digest.
        let drive = |fabric: &dyn Fabric| {
            let a = fabric.register(PartyId::new("a"));
            let b = fabric.register(PartyId::new("b"));
            let c = fabric.register(PartyId::new("c"));
            a.send(b.id(), frame(1, b"to b")).unwrap();
            a.send(c.id(), frame(2, b"to c, longer")).unwrap();
            c.send(a.id(), frame(3, b"back")).unwrap();
            // Drain so nothing is in flight when stats are read.
            b.recv().unwrap();
            a.recv().unwrap();
            c.recv().unwrap();
            (fabric.fault_stats(), fabric.link_stats())
        };
        let board = Switchboard::new();
        let wire = WireFabric::new();
        assert_eq!(drive(&board), drive(&wire));
    }

    #[test]
    fn wire_corruption_caught_by_frame_checksum() {
        let fabric = WireFabric::with_shape(
            WireShape::default(),
            FaultConfig {
                corrupt_chance: 1.0,
                seed: 3,
                ..Default::default()
            },
        );
        let a = fabric.register(PartyId::new("a"));
        let b = fabric.register(PartyId::new("b"));
        a.send(b.id(), frame(1, b"precious data")).unwrap();
        match b.recv() {
            Err(TransportError::Wire(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        assert_eq!(fabric.fault_stats().corrupted, 1);
    }

    #[test]
    fn wire_duplicates_deliver_twice() {
        let fabric = WireFabric::with_shape(
            WireShape::default(),
            FaultConfig {
                duplicate_chance: 1.0,
                ..Default::default()
            },
        );
        let a = fabric.register(PartyId::new("a"));
        let b = fabric.register(PartyId::new("b"));
        a.send(b.id(), frame(1, b"twice")).unwrap();
        assert!(b.recv().is_ok());
        assert!(b.recv().is_ok());
    }

    #[test]
    fn dropping_the_wire_fabric_publishes_metrics_with_wire_family() {
        let rec = Recorder::new();
        {
            let fabric =
                WireFabric::with_shape_obs(WireShape::default(), FaultConfig::none(), rec.clone());
            let a = fabric.register(PartyId::new("a"));
            let b = fabric.register(PartyId::new("b"));
            a.send(b.id(), frame(1, b"counted")).unwrap();
            let _ = b.recv().unwrap();
            assert_eq!(rec.read_counter("net.frames.sent"), 0);
        }
        assert_eq!(rec.read_counter("net.frames.sent"), 1);
        assert_eq!(rec.read_counter("net.link.a->b.sent"), 1);
        assert_eq!(rec.read_counter("net.wire.conns.dialed"), 1);
        assert_eq!(rec.read_counter("net.wire.conns.accepted"), 1);
    }

    #[test]
    fn cross_thread_wire_delivery() {
        let fabric = WireFabric::new();
        let a = fabric.register(PartyId::new("a"));
        let b = fabric.register(PartyId::new("b"));
        let handle = std::thread::spawn(move || b.recv().unwrap().frame.msg_type);
        a.send(&PartyId::new("b"), frame(42, b"cross-thread"))
            .unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
