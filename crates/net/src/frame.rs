//! Wire format: length-prefixed, type-tagged, checksummed frames.
//!
//! A [`Frame`] is the unit of delivery between parties. The payload is an
//! opaque byte string produced by the protocol crates' own codecs
//! (implementations of [`WireEncode`]/[`WireDecode`]). The checksum is a
//! Fletcher-style 32-bit sum that lets the transport detect (injected or
//! accidental) corruption, mirroring what TLS record MACs give the real
//! deployments.
//!
//! ```text
//!  0      4      6            10         10+n        14+n
//!  | magic | type | payload len | payload n | checksum |
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Frame magic: "PMN1".
pub const MAGIC: u32 = 0x504d_4e31;

/// Errors arising from the wire codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame or message was shorter than its header promised.
    Truncated,
    /// Magic number mismatch — not one of our frames.
    BadMagic,
    /// Checksum mismatch — corrupted in flight.
    BadChecksum,
    /// A field held an invalid value (enum tag, length bound, etc.).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A typed message frame.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined message type tag.
    pub msg_type: u16,
    /// Opaque payload (protocol codec output).
    pub payload: Bytes,
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame {{ type: {}, payload: {} bytes }}",
            self.msg_type,
            self.payload.len()
        )
    }
}

/// Fletcher-32-style checksum (two 16-bit sums over the data).
fn checksum(data: &[u8]) -> u32 {
    let mut s1: u32 = 0xf00d;
    let mut s2: u32 = 0xcafe;
    for chunk in data.chunks(360) {
        for &b in chunk {
            s1 += b as u32;
            s2 += s1;
        }
        s1 %= 65535;
        s2 %= 65535;
    }
    (s2 << 16) | s1
}

impl Frame {
    /// Creates a frame with the given type and payload.
    pub fn new(msg_type: u16, payload: Bytes) -> Frame {
        Frame { msg_type, payload }
    }

    /// Creates a frame by encoding a message.
    pub fn encode_msg<M: WireEncode>(msg_type: u16, msg: &M) -> Frame {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        Frame::new(msg_type, buf.freeze())
    }

    /// Decodes the payload as a message of type `M`.
    pub fn decode_msg<M: WireDecode>(&self) -> Result<M, WireError> {
        let mut buf = self.payload.clone();
        let msg = M::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(WireError::Invalid("trailing bytes after message"));
        }
        Ok(msg)
    }

    /// Serializes the frame to its on-the-wire byte form.
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(14 + self.payload.len());
        buf.put_u32(MAGIC);
        buf.put_u16(self.msg_type);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        let sum = checksum(&buf);
        buf.put_u32(sum);
        buf.freeze()
    }

    /// Parses a frame from wire bytes, verifying magic and checksum.
    pub fn from_wire(mut data: Bytes) -> Result<Frame, WireError> {
        if data.len() < 14 {
            return Err(WireError::Truncated);
        }
        let body = data.slice(..data.len() - 4);
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let msg_type = data.get_u16();
        let len = data.get_u32() as usize;
        if data.remaining() != len + 4 {
            return Err(WireError::Truncated);
        }
        let payload = data.slice(..len);
        data.advance(len);
        let stated = data.get_u32();
        if checksum(&body) != stated {
            return Err(WireError::BadChecksum);
        }
        Ok(Frame { msg_type, payload })
    }
}

/// Flips one bit of a serialized frame in place — the transport's
/// corruption fault. Lives next to the codec because the detection
/// contract is the codec's: any single-bit flip anywhere in the wire
/// image must surface as a [`WireError`] from [`Frame::from_wire`]
/// (bad magic, truncation, or checksum mismatch), never as a silently
/// altered message.
pub fn flip_wire_bit(wire: &mut [u8], idx: usize, bit: u32) {
    wire[idx] ^= 1u8 << (bit % 8);
}

/// Types that can serialize themselves onto a byte buffer.
pub trait WireEncode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encodes to a standalone byte string.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Types that can parse themselves from a byte buffer.
pub trait WireDecode: Sized {
    /// Consumes the canonical encoding of `Self` from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Decodes from a standalone byte string, requiring full consumption.
    fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let mut buf = Bytes::copy_from_slice(data);
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(WireError::Invalid("trailing bytes"));
        }
        Ok(v)
    }
}

// ----- codec helpers used by protocol crates -----

/// Reads `n` bytes or errors with `Truncated`.
pub fn get_bytes(buf: &mut Bytes, n: usize) -> Result<Bytes, WireError> {
    if buf.remaining() < n {
        return Err(WireError::Truncated);
    }
    let out = buf.slice(..n);
    buf.advance(n);
    Ok(out)
}

/// Reads a `u8`.
pub fn get_u8(buf: &mut Bytes) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Reads a big-endian `u16`.
pub fn get_u16(buf: &mut Bytes) -> Result<u16, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u16())
}

/// Reads a big-endian `u32`.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32())
}

/// Reads a big-endian `u64`.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64())
}

/// Reads a big-endian `i64`.
pub fn get_i64(buf: &mut Bytes) -> Result<i64, WireError> {
    Ok(get_u64(buf)? as i64)
}

/// Reads an `f64` (IEEE-754 bits, big-endian).
pub fn get_f64(buf: &mut Bytes) -> Result<f64, WireError> {
    Ok(f64::from_bits(get_u64(buf)?))
}

/// Writes a length-prefixed byte string (u32 length).
pub fn put_lp_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32(data.len() as u32);
    buf.put_slice(data);
}

/// Reads a length-prefixed byte string (u32 length).
pub fn get_lp_bytes(buf: &mut Bytes) -> Result<Bytes, WireError> {
    let len = get_u32(buf)? as usize;
    get_bytes(buf, len)
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_lp_str(buf: &mut BytesMut, s: &str) {
    put_lp_bytes(buf, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_lp_str(buf: &mut Bytes) -> Result<String, WireError> {
    let raw = get_lp_bytes(buf)?;
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::Invalid("utf-8 string"))
}

/// Writes a fixed 32-byte array.
pub fn put_array32(buf: &mut BytesMut, a: &[u8; 32]) {
    buf.put_slice(a);
}

/// Reads a fixed 32-byte array.
pub fn get_array32(buf: &mut Bytes) -> Result<[u8; 32], WireError> {
    let raw = get_bytes(buf, 32)?;
    let mut out = [0u8; 32];
    out.copy_from_slice(&raw);
    Ok(out)
}

/// Writes a `Vec<T: WireEncode>` with a u32 count prefix.
pub fn put_vec<T: WireEncode>(buf: &mut BytesMut, items: &[T]) {
    buf.put_u32(items.len() as u32);
    for item in items {
        item.encode(buf);
    }
}

/// Reads a `Vec<T: WireDecode>` with a u32 count prefix, bounding the
/// count to `max` to avoid attacker-controlled allocations.
pub fn get_vec<T: WireDecode>(buf: &mut Bytes, max: usize) -> Result<Vec<T>, WireError> {
    let n = get_u32(buf)? as usize;
    if n > max {
        return Err(WireError::Invalid("vector length exceeds bound"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(buf)?);
    }
    Ok(out)
}

impl WireEncode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(*self);
    }
}

impl WireDecode for u64 {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_u64(buf)
    }
}

impl WireEncode for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64(*self);
    }
}

impl WireDecode for i64 {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_i64(buf)
    }
}

impl WireEncode for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.to_bits());
    }
}

impl WireDecode for f64 {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_f64(buf)
    }
}

impl WireEncode for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_lp_str(buf, self);
    }
}

impl WireDecode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_lp_str(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = Frame::new(7, Bytes::from_static(b"hello measurement"));
        let wire = f.to_wire();
        let back = Frame::from_wire(wire).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = Frame::new(0, Bytes::new());
        assert_eq!(Frame::from_wire(f.to_wire()).unwrap(), f);
    }

    #[test]
    fn corrupt_detected() {
        let f = Frame::new(3, Bytes::from_static(b"payload"));
        let mut wire = f.to_wire().to_vec();
        wire[11] ^= 0x40; // flip a payload bit (payload starts at offset 10)
        assert_eq!(
            Frame::from_wire(Bytes::from(wire)),
            Err(WireError::BadChecksum)
        );
    }

    #[test]
    fn bad_magic_detected() {
        let f = Frame::new(3, Bytes::from_static(b"payload"));
        let mut wire = f.to_wire().to_vec();
        wire[0] = 0xff;
        assert_eq!(
            Frame::from_wire(Bytes::from(wire)),
            Err(WireError::BadMagic)
        );
    }

    #[test]
    fn truncated_detected() {
        let f = Frame::new(3, Bytes::from_static(b"payload"));
        let wire = f.to_wire();
        for cut in [0, 5, 13, wire.len() - 1] {
            assert!(Frame::from_wire(wire.slice(..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn length_field_lies_detected() {
        let f = Frame::new(3, Bytes::from_static(b"payload"));
        let mut wire = f.to_wire().to_vec();
        wire[9] = 200; // inflate stated payload length
        assert!(Frame::from_wire(Bytes::from(wire)).is_err());
    }

    #[test]
    fn lp_helpers_roundtrip() {
        let mut buf = BytesMut::new();
        put_lp_str(&mut buf, "tally-server");
        put_lp_bytes(&mut buf, &[1, 2, 3]);
        buf.put_u64(0xdeadbeef);
        let mut rd = buf.freeze();
        assert_eq!(get_lp_str(&mut rd).unwrap(), "tally-server");
        assert_eq!(get_lp_bytes(&mut rd).unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(get_u64(&mut rd).unwrap(), 0xdeadbeef);
        assert!(!rd.has_remaining());
    }

    #[test]
    fn vec_codec_bounds() {
        let items: Vec<u64> = (0..10).collect();
        let mut buf = BytesMut::new();
        put_vec(&mut buf, &items);
        let mut rd = buf.clone().freeze();
        assert_eq!(get_vec::<u64>(&mut rd, 10).unwrap(), items);
        let mut rd2 = buf.freeze();
        assert_eq!(
            get_vec::<u64>(&mut rd2, 9),
            Err(WireError::Invalid("vector length exceeds bound"))
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        put_lp_bytes(&mut buf, &[0xff, 0xfe, 0xfd]);
        let mut rd = buf.freeze();
        assert!(get_lp_str(&mut rd).is_err());
    }

    #[test]
    fn decode_msg_rejects_trailing() {
        let mut buf = BytesMut::new();
        buf.put_u64(42);
        buf.put_u8(0);
        let f = Frame::new(1, buf.freeze());
        assert!(f.decode_msg::<u64>().is_err());
    }

    #[test]
    fn checksum_sensitivity() {
        // Any single-byte change must change the checksum.
        let base = b"the quick brown onion routes over the lazy relay".to_vec();
        let c0 = checksum(&base);
        for i in 0..base.len() {
            let mut m = base.clone();
            m[i] ^= 1;
            assert_ne!(checksum(&m), c0, "byte {i}");
        }
    }
}
