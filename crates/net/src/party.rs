//! Protocol party runner: drives [`Node`] state machines over any
//! [`Fabric`] backend.
//!
//! Two execution modes:
//!
//! * [`Runner::run_deterministic`] — a single-threaded round-robin
//!   scheduler. Messages are delivered in a reproducible order, which
//!   makes protocol tests deterministic and debuggable. Only valid on
//!   the in-process backends: the scheduler equates "no message
//!   immediately available" with "nothing in flight", which is false
//!   on a socket fabric where frames sit in kernel buffers.
//! * [`Runner::run_threaded`] — one OS thread per party, matching how a
//!   real deployment runs one process per party. Valid on every
//!   backend; the only mode for the wire fabric.
//!
//! Both run until every node reports [`Step::Done`] (or a node fails).
//!
//! The runner is backend-generic: it holds an `Arc<dyn Fabric>` and
//! registers its parties through the trait. Protocol state machines
//! may rely on per-sender FIFO order only — cross-sender arrival order
//! is a schedule artifact on every backend (token queue, OS scheduler,
//! or TCP timing).

use crate::transport::{Endpoint, Envelope, Fabric, PartyId, TransportError};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// What a node wants after handling an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Keep delivering messages.
    Continue,
    /// This node has completed its role in the protocol.
    Done,
}

/// Errors surfaced by protocol nodes.
#[derive(Debug, Clone)]
pub enum NodeError {
    /// The node received a message it considers fatal to the round.
    Protocol(String),
    /// Transport failure.
    Transport(TransportError),
    /// A failure attributed to the party that raised — and thereby
    /// *detected* — it. The runner wraps node errors in this variant
    /// so callers can report who observed the fault (a verifying TS, a
    /// share keeper rejecting a malformed payload, …). Runner-level
    /// failures such as deadlock detection stay unattributed.
    Detected {
        /// The party whose state machine raised the error.
        by: PartyId,
        /// The underlying failure.
        source: Box<NodeError>,
    },
}

impl NodeError {
    /// Wraps the error with the party that raised it; already-attributed
    /// errors keep their original (innermost) detector.
    pub fn attributed_to(self, by: &PartyId) -> NodeError {
        match self {
            NodeError::Detected { .. } => self,
            other => NodeError::Detected {
                by: by.clone(),
                source: Box::new(other),
            },
        }
    }

    /// The party that detected the failure, if it was attributed.
    pub fn detected_by(&self) -> Option<&PartyId> {
        match self {
            NodeError::Detected { by, .. } => Some(by),
            _ => None,
        }
    }

    /// The failure description without the attribution wrapper.
    pub fn reason(&self) -> String {
        match self {
            NodeError::Detected { source, .. } => source.reason(),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Protocol(s) => write!(f, "protocol error: {s}"),
            NodeError::Transport(e) => write!(f, "transport error: {e}"),
            NodeError::Detected { by, source } => write!(f, "{source} (detected by {by})"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> Self {
        NodeError::Transport(e)
    }
}

/// A protocol state machine.
///
/// Nodes never block: they are handed their endpoint on start (to send
/// opening messages) and then receive one envelope at a time.
pub trait Node: Send {
    /// Called once before any message delivery; the node may send its
    /// opening messages through `ep`.
    fn on_start(&mut self, ep: &Endpoint) -> Result<Step, NodeError>;

    /// Called for each delivered message.
    fn on_message(&mut self, ep: &Endpoint, env: Envelope) -> Result<Step, NodeError>;

    /// Human-readable role for diagnostics.
    fn role(&self) -> &'static str {
        "node"
    }
}

/// Binds nodes to party ids and runs them over a [`Fabric`] backend.
pub struct Runner {
    board: Arc<dyn Fabric>,
    nodes: Vec<(PartyId, Box<dyn Node>)>,
}

impl Runner {
    /// Creates a runner over a concrete fabric (e.g. a `Switchboard`).
    pub fn new(board: impl Fabric + 'static) -> Runner {
        Runner::over(Arc::new(board))
    }

    /// Creates a runner over an already-shared fabric handle.
    pub fn over(board: Arc<dyn Fabric>) -> Runner {
        Runner {
            board,
            nodes: Vec::new(),
        }
    }

    /// Adds a node under a party id.
    pub fn add(&mut self, id: impl Into<PartyId>, node: Box<dyn Node>) -> &mut Self {
        self.nodes.push((id.into(), node));
        self
    }

    /// The underlying fabric.
    pub fn board(&self) -> &Arc<dyn Fabric> {
        &self.board
    }

    /// Runs all nodes on a single thread with round-robin delivery until
    /// all are done and no messages remain in flight.
    ///
    /// Returns the nodes (so callers can extract results) in insertion
    /// order. Wire-corrupted messages are dropped with a count returned.
    pub fn run_deterministic(self) -> Result<RunOutcome, NodeError> {
        let mut endpoints: Vec<Endpoint> = Vec::new();
        let mut nodes = Vec::new();
        for (id, node) in self.nodes {
            endpoints.push(self.board.register(id.clone()));
            nodes.push((id, node, false)); // (id, node, done)
        }
        let mut corrupt_dropped = 0u64;
        // Start phase.
        for (i, (id, node, done)) in nodes.iter_mut().enumerate() {
            let step = node
                .on_start(&endpoints[i])
                .map_err(|e| e.attributed_to(id))?;
            if matches!(step, Step::Done) {
                *done = true;
            }
        }
        // Delivery loop.
        loop {
            let mut delivered_any = false;
            for (i, (id, node, done)) in nodes.iter_mut().enumerate() {
                loop {
                    match endpoints[i].try_recv() {
                        Ok(env) => {
                            delivered_any = true;
                            if *done {
                                // Late message to a finished node: ignore.
                                continue;
                            }
                            let step = node
                                .on_message(&endpoints[i], env)
                                .map_err(|e| e.attributed_to(id))?;
                            if matches!(step, Step::Done) {
                                *done = true;
                            }
                        }
                        Err(TransportError::Empty) => break,
                        Err(TransportError::Wire(_)) => {
                            corrupt_dropped += 1;
                            delivered_any = true;
                        }
                        Err(e) => return Err(NodeError::from(e).attributed_to(id)),
                    }
                }
            }
            let all_done = nodes.iter().all(|(_, _, done)| *done);
            if !delivered_any {
                if all_done {
                    break;
                }
                // No progress and not done: the protocol is stuck.
                let stuck: Vec<String> = nodes
                    .iter()
                    .filter(|(_, _, d)| !d)
                    .map(|(id, node, _)| format!("{id} ({})", node.role()))
                    .collect();
                return Err(NodeError::Protocol(format!(
                    "deadlock: no messages in flight but parties not done: {}",
                    stuck.join(", ")
                )));
            }
        }
        Ok(RunOutcome {
            nodes: nodes.into_iter().map(|(id, node, _)| (id, node)).collect(),
            corrupt_dropped,
        })
    }

    /// Runs each node on its own OS thread (blocking receive loop), as a
    /// real per-process deployment would. Panics in node threads are
    /// surfaced as errors.
    pub fn run_threaded(self) -> Result<RunOutcome, NodeError> {
        let board = self.board;
        let mut handles = Vec::new();
        // Register all endpoints BEFORE any thread starts so early sends
        // never hit UnknownParty.
        let mut prepared: Vec<(PartyId, Box<dyn Node>, Endpoint)> = Vec::new();
        for (id, node) in self.nodes {
            let ep = board.register(id.clone());
            prepared.push((id, node, ep));
        }
        for (id, mut node, ep) in prepared {
            let thread_id = id.clone();
            handles.push((
                id,
                std::thread::spawn(
                    move || -> Result<(PartyId, Box<dyn Node>, u64), NodeError> {
                        let id = thread_id;
                        let mut corrupt = 0u64;
                        let mut step = node.on_start(&ep).map_err(|e| e.attributed_to(&id))?;
                        while step == Step::Continue {
                            match ep.recv() {
                                Ok(env) => {
                                    step = node
                                        .on_message(&ep, env)
                                        .map_err(|e| e.attributed_to(&id))?;
                                }
                                Err(TransportError::Wire(_)) => {
                                    corrupt += 1;
                                }
                                Err(e) => return Err(NodeError::from(e).attributed_to(&id)),
                            }
                        }
                        Ok((id, node, corrupt))
                    },
                ),
            ));
        }
        let mut nodes = Vec::new();
        let mut corrupt_dropped = 0;
        for (id, h) in handles {
            let (id, node, corrupt) = h.join().map_err(|_| {
                NodeError::Protocol("node thread panicked".into()).attributed_to(&id)
            })??;
            corrupt_dropped += corrupt;
            nodes.push((id, node));
        }
        Ok(RunOutcome {
            nodes,
            corrupt_dropped,
        })
    }
}

/// The result of driving a protocol to completion.
pub struct RunOutcome {
    /// The nodes after completion, with their party ids.
    pub nodes: Vec<(PartyId, Box<dyn Node>)>,
    /// Messages dropped because they failed wire validation.
    pub corrupt_dropped: u64,
}

impl RunOutcome {
    /// Extracts the node registered under `id`, downcasting is the
    /// caller's business; this returns the box.
    pub fn take(&mut self, id: &PartyId) -> Option<Box<dyn Node>> {
        let idx = self.nodes.iter().position(|(nid, _)| nid == id)?;
        Some(self.nodes.remove(idx).1)
    }

    /// Map of party id -> node, ordered by id so callers that iterate
    /// it observe a deterministic sequence.
    pub fn into_map(self) -> BTreeMap<PartyId, Box<dyn Node>> {
        self.nodes.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::transport::Switchboard;
    use bytes::Bytes;

    /// Ping: sends `count` pings to "pong", expects echoes back.
    struct Ping {
        peer: PartyId,
        count: u32,
        acked: u32,
    }

    /// Pong: echoes until told to stop (msg_type 2).
    struct Pong {
        expected: u32,
        seen: u32,
    }

    impl Node for Ping {
        fn on_start(&mut self, ep: &Endpoint) -> Result<Step, NodeError> {
            for _ in 0..self.count {
                ep.send(&self.peer, Frame::new(1, Bytes::from_static(b"ping")))?;
            }
            Ok(Step::Continue)
        }
        fn on_message(&mut self, ep: &Endpoint, _env: Envelope) -> Result<Step, NodeError> {
            self.acked += 1;
            if self.acked == self.count {
                ep.send(&self.peer, Frame::new(2, Bytes::from_static(b"stop")))?;
                return Ok(Step::Done);
            }
            Ok(Step::Continue)
        }
        fn role(&self) -> &'static str {
            "ping"
        }
    }

    impl Node for Pong {
        fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
            Ok(Step::Continue)
        }
        fn on_message(&mut self, ep: &Endpoint, env: Envelope) -> Result<Step, NodeError> {
            if env.frame.msg_type == 2 {
                assert_eq!(self.seen, self.expected);
                return Ok(Step::Done);
            }
            self.seen += 1;
            ep.send(&env.from, Frame::new(1, Bytes::from_static(b"pong")))?;
            Ok(Step::Continue)
        }
        fn role(&self) -> &'static str {
            "pong"
        }
    }

    fn build(count: u32) -> Runner {
        let board = Switchboard::new();
        let mut runner = Runner::new(board);
        runner.add(
            "ping",
            Box::new(Ping {
                peer: PartyId::new("pong"),
                count,
                acked: 0,
            }),
        );
        runner.add(
            "pong",
            Box::new(Pong {
                expected: count,
                seen: 0,
            }),
        );
        runner
    }

    #[test]
    fn deterministic_run_completes() {
        let outcome = build(5).run_deterministic().unwrap();
        assert_eq!(outcome.nodes.len(), 2);
        assert_eq!(outcome.corrupt_dropped, 0);
    }

    #[test]
    fn threaded_run_completes() {
        let outcome = build(50).run_threaded().unwrap();
        assert_eq!(outcome.nodes.len(), 2);
    }

    #[test]
    fn deadlock_detected() {
        // A node that waits forever for a message nobody sends.
        struct Waiter;
        impl Node for Waiter {
            fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
                Ok(Step::Continue)
            }
            fn on_message(&mut self, _ep: &Endpoint, _env: Envelope) -> Result<Step, NodeError> {
                Ok(Step::Done)
            }
        }
        let board = Switchboard::new();
        let mut runner = Runner::new(board);
        runner.add("waiter", Box::new(Waiter));
        match runner.run_deterministic() {
            Err(NodeError::Protocol(msg)) => assert!(msg.contains("deadlock"), "{msg}"),
            other => panic!("expected deadlock, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn node_errors_are_attributed_to_the_detecting_party() {
        struct Refuser;
        impl Node for Refuser {
            fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
                Err(NodeError::Protocol("bad share".into()))
            }
            fn on_message(&mut self, _ep: &Endpoint, _env: Envelope) -> Result<Step, NodeError> {
                unreachable!()
            }
        }
        let mut runner = Runner::new(Switchboard::new());
        runner.add("sk-1", Box::new(Refuser));
        let err = match runner.run_deterministic() {
            Err(e) => e,
            Ok(_) => panic!("refusing node must fail the run"),
        };
        assert_eq!(err.detected_by().map(PartyId::as_str), Some("sk-1"));
        assert_eq!(err.reason(), "protocol error: bad share");
        assert!(err.to_string().contains("detected by sk-1"), "{err}");
        // Deadlock stays unattributed: the runner, not a party, sees it.
        struct Waiter;
        impl Node for Waiter {
            fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
                Ok(Step::Continue)
            }
            fn on_message(&mut self, _ep: &Endpoint, _env: Envelope) -> Result<Step, NodeError> {
                Ok(Step::Done)
            }
        }
        let mut runner = Runner::new(Switchboard::new());
        runner.add("waiter", Box::new(Waiter));
        match runner.run_deterministic() {
            Err(e) => assert!(e.detected_by().is_none()),
            Ok(_) => panic!("stuck node must deadlock"),
        }
    }

    #[test]
    fn immediate_done_on_start() {
        struct Quick;
        impl Node for Quick {
            fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
                Ok(Step::Done)
            }
            fn on_message(&mut self, _ep: &Endpoint, _env: Envelope) -> Result<Step, NodeError> {
                unreachable!()
            }
        }
        let board = Switchboard::new();
        let mut runner = Runner::new(board);
        runner.add("quick", Box::new(Quick));
        let outcome = runner.run_deterministic().unwrap();
        assert_eq!(outcome.nodes.len(), 1);
    }

    #[test]
    fn take_by_id() {
        let mut outcome = build(1).run_deterministic().unwrap();
        assert!(outcome.take(&PartyId::new("ping")).is_some());
        assert!(outcome.take(&PartyId::new("ping")).is_none());
        assert!(outcome.take(&PartyId::new("pong")).is_some());
    }
}
