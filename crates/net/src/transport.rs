//! The [`Fabric`] abstraction, the in-memory [`Switchboard`] backend,
//! and the fault-injection layer.
//!
//! Every party registers under a [`PartyId`] and receives an
//! [`Endpoint`]. Sends serialize the frame to wire bytes and enqueue them
//! on the recipient's mailbox; receives parse and checksum-verify. The
//! serialize/parse round trip through real wire bytes is deliberate: it
//! keeps the codecs honest and gives fault injection something faithful
//! to corrupt.
//!
//! # The `Fabric` trait
//!
//! [`Fabric`] is the send/recv/link-stats/metrics-publication surface
//! every protocol driver programs against: register parties, move
//! frames, expose per-link [`LinkStats`], and fold the frame/byte
//! counters into the round's recorder exactly once when the last
//! handle drops. Two backends live in this crate: the in-process
//! [`Switchboard`] below and the socket-backed
//! [`crate::wire::WireFabric`]. [`FabricChoice`] names the backends so
//! round configurations stay `Copy`/`Clone` while the fabric itself is
//! built at round start.
//!
//! # Delivery modes
//!
//! The default switchboard keeps one **mailbox per ordered `(from, to)`
//! link**: serialization, fault rolls, and the queue push all happen
//! under per-link state, so concurrent traffic on disjoint links never
//! convoys behind a shared lock — TS↔CP and TS↔DC phases of a protocol
//! round overlap freely. Per-recipient arrival order is decided by a
//! tiny token queue (one token per delivered frame); within a link,
//! FIFO order is preserved, which is the only ordering the protocols
//! rely on. Fault schedules are **per link**, seeded from
//! `(seed, from, to)`, so one link's schedule is independent of the
//! traffic on every other link.
//!
//! [`Switchboard::single_lock_with_faults`] keeps the original fabric —
//! one global lock and one global fault RNG in delivery order — as the
//! comparison baseline for the fault-injection regression tests.

use crate::frame::{flip_wire_bit, Frame, WireError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use pm_obs::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A party's stable name on the fabric (e.g. `"ts"`, `"sk-1"`, `"dc-7"`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId(pub String);

impl PartyId {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> PartyId {
        PartyId(s.into())
    }

    /// The party name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PartyId {
    fn from(s: &str) -> PartyId {
        PartyId(s.to_string())
    }
}

/// A received message: sender plus frame.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Who sent it.
    pub from: PartyId,
    /// The delivered frame.
    pub frame: Frame,
}

/// Transport-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Recipient is not registered on the fabric.
    UnknownParty(String),
    /// The party's channel is closed (it has shut down).
    Disconnected,
    /// No message available (non-blocking receive).
    Empty,
    /// The received bytes failed to parse as a frame (or the wire
    /// stream failed to reassemble into frames).
    Wire(WireError),
    /// The per-link token queue and link mailboxes disagree — a
    /// delivery token arrived for a link that has no mailbox or no
    /// queued frame. Indicates a fabric bookkeeping bug (e.g. an
    /// orphaned frame left behind by a failed delivery).
    Desync(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownParty(p) => write!(f, "unknown party: {p}"),
            TransportError::Disconnected => write!(f, "party disconnected"),
            TransportError::Empty => write!(f, "no message available"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Desync(s) => write!(f, "link desync: {s}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Fault-injection knobs, mirroring smoltcp's example options.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a sent frame is silently dropped.
    pub drop_chance: f64,
    /// Probability a sent frame is delivered twice.
    pub duplicate_chance: f64,
    /// Probability one byte of the frame is flipped in flight.
    pub corrupt_chance: f64,
    /// RNG seed for deterministic fault schedules.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            duplicate_chance: 0.0,
            corrupt_chance: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A lossless configuration (the default).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// True if any fault is possible.
    pub fn is_active(&self) -> bool {
        self.drop_chance > 0.0 || self.duplicate_chance > 0.0 || self.corrupt_chance > 0.0
    }
}

pub(crate) type WireMessage = (PartyId, Vec<u8>);

/// Delivery statistics, for tests and the fault-injection examples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames submitted for delivery.
    pub sent: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Extra deliveries due to duplication.
    pub duplicated: u64,
    /// Frames with a byte flipped.
    pub corrupted: u64,
}

#[derive(Default)]
pub(crate) struct AtomicStats {
    pub(crate) sent: AtomicU64,
    pub(crate) dropped: AtomicU64,
    pub(crate) duplicated: AtomicU64,
    pub(crate) corrupted: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            sent: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
        }
    }
}

/// Per-link delivery statistics: everything that happened on one
/// ordered `(from, to)` link, with corrupted-then-delivered frames
/// counted apart from clean ones (the board-wide [`FaultStats`]
/// aggregate cannot make that distinction per link).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames submitted for delivery on this link.
    pub sent: u64,
    /// Wire bytes submitted (pre-corruption; bit flips preserve size).
    pub bytes: u64,
    /// Order-sensitive FNV-1a digest of every wire byte submitted on
    /// this link, in send order (pre-fault, like `bytes`). Two fabrics
    /// carried the *same transcript* on a link exactly when their
    /// digests agree — the wire-vs-in-process equality tests pin this.
    pub digest: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames the duplicate fault delivered twice.
    pub duplicated: u64,
    /// Copies committed for delivery with intact wire bytes.
    pub delivered_clean: u64,
    /// Copies committed for delivery with a flipped bit — the receiver
    /// sees these as checksum failures, the stats see them distinctly.
    pub delivered_corrupted: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_fold(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One link's counters plus its running transcript digest. The digest
/// sits behind a mutex (not an atomic) because it is order-sensitive:
/// per-link send order is well-defined — one sender, per-sender FIFO —
/// and the fold must observe it.
pub(crate) struct LinkRecord {
    sent: AtomicU64,
    bytes: AtomicU64,
    digest: Mutex<u64>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delivered_clean: AtomicU64,
    delivered_corrupted: AtomicU64,
}

impl Default for LinkRecord {
    fn default() -> Self {
        LinkRecord {
            sent: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            digest: Mutex::new(FNV_OFFSET),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delivered_clean: AtomicU64::new(0),
            delivered_corrupted: AtomicU64::new(0),
        }
    }
}

impl LinkRecord {
    fn snapshot(&self) -> LinkStats {
        LinkStats {
            sent: self.sent.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            digest: *self.digest.lock(),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delivered_clean: self.delivered_clean.load(Ordering::Relaxed),
            delivered_corrupted: self.delivered_corrupted.load(Ordering::Relaxed),
        }
    }
}

/// What the fault layer decided for one frame.
pub(crate) enum Verdict {
    Deliver { copies: usize, corrupted: bool },
    Drop,
}

/// Rolls the fault dice for one frame, mutating `wire` on corruption.
/// The roll order (drop, corrupt, duplicate) is shared by every
/// delivery mode so a given RNG produces the same schedule on each.
pub(crate) fn roll_faults(
    faults: &FaultConfig,
    rng: &mut StdRng,
    wire: &mut [u8],
    stats: &AtomicStats,
) -> Verdict {
    if !faults.is_active() {
        return Verdict::Deliver {
            copies: 1,
            corrupted: false,
        };
    }
    let drop_roll: f64 = rng.gen();
    if drop_roll < faults.drop_chance {
        stats.dropped.fetch_add(1, Ordering::Relaxed);
        return Verdict::Drop; // silently dropped, like a lossy link
    }
    let corrupt_roll: f64 = rng.gen();
    let corrupted = corrupt_roll < faults.corrupt_chance && !wire.is_empty();
    if corrupted {
        let idx = rng.gen_range(0..wire.len());
        let bit = rng.gen_range(0..8u32);
        flip_wire_bit(wire, idx, bit);
        stats.corrupted.fetch_add(1, Ordering::Relaxed);
    }
    let dup_roll: f64 = rng.gen();
    if dup_roll < faults.duplicate_chance {
        stats.duplicated.fetch_add(1, Ordering::Relaxed);
        Verdict::Deliver {
            copies: 2,
            corrupted,
        }
    } else {
        Verdict::Deliver {
            copies: 1,
            corrupted,
        }
    }
}

/// Per-link fault-schedule seed: the workspace's labelled seed
/// derivation over the fabric seed and both endpoint names (the same
/// scheme torsim uses for its per-partition RNGs). Shared by every
/// backend so a given `(seed, from, to)` link sees the identical fault
/// schedule on the in-process and the socket fabric alike.
pub(crate) fn link_seed(seed: u64, from: &PartyId, to: &PartyId) -> u64 {
    pm_stats::sampling::derive_seed(seed, &format!("link/{from}\u{0}->\u{0}{to}"))
}

/// The send-side accounting every backend shares: the board-wide
/// [`FaultStats`], the per-link [`LinkRecord`]s (keyed by ordered
/// `(from, to)`, sorted so iteration is deterministic), and the
/// publish-on-last-drop metrics contract. Backends embed one and call
/// [`LinkLedger::tally_send`] / [`LinkLedger::tally_verdict`] at the
/// same points, which is what makes the shared `net.*` counters
/// backend-invariant under a lossless schedule.
pub(crate) struct LinkLedger {
    stats: AtomicStats,
    links: Mutex<BTreeMap<(PartyId, PartyId), Arc<LinkRecord>>>,
    recorder: Recorder,
}

impl LinkLedger {
    pub(crate) fn new(recorder: Recorder) -> LinkLedger {
        LinkLedger {
            stats: AtomicStats::default(),
            links: Mutex::new(BTreeMap::new()),
            recorder,
        }
    }

    pub(crate) fn stats(&self) -> &AtomicStats {
        &self.stats
    }

    /// Counts one submitted frame: board-wide `sent`, the link's
    /// `sent`/`bytes`, and the link's transcript digest (pre-fault
    /// wire bytes, in send order). Returns the link record so the
    /// caller can tally the fault verdict on it.
    pub(crate) fn tally_send(&self, from: &PartyId, to: &PartyId, wire: &[u8]) -> Arc<LinkRecord> {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let record = {
            let mut links = self.links.lock();
            Arc::clone(
                links
                    .entry((from.clone(), to.clone()))
                    .or_insert_with(|| Arc::new(LinkRecord::default())),
            )
        };
        record.sent.fetch_add(1, Ordering::Relaxed);
        record.bytes.fetch_add(wire.len() as u64, Ordering::Relaxed);
        {
            let mut digest = record.digest.lock();
            *digest = fnv1a_fold(*digest, wire);
        }
        record
    }

    /// Records the fault verdict for one frame on its link's counters.
    pub(crate) fn tally_verdict(record: &LinkRecord, verdict: &Verdict) {
        match verdict {
            Verdict::Drop => {
                record.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::Deliver { copies, corrupted } => {
                if *copies > 1 {
                    record.duplicated.fetch_add(1, Ordering::Relaxed);
                }
                let delivered = if *corrupted {
                    &record.delivered_corrupted
                } else {
                    &record.delivered_clean
                };
                delivered.fetch_add(*copies as u64, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn fault_stats(&self) -> FaultStats {
        self.stats.snapshot()
    }

    pub(crate) fn link_stats(&self) -> Vec<((PartyId, PartyId), LinkStats)> {
        self.links
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Folds this fabric's totals into the recorder's metrics registry:
    /// board-wide frame/byte counters plus one `net.link.{from}->{to}.*`
    /// family per link (fault-outcome keys only where the outcome
    /// occurred — the fault schedule is deterministic, so key presence
    /// is too). `extra` carries backend-specific counters (the wire
    /// backend's `net.wire.*` family); they are published after the
    /// shared keys and never under the shared names.
    pub(crate) fn publish_metrics(&self, extra: &[(&str, u64)]) {
        let links = self.links.lock();
        if links.is_empty() {
            return; // fabric never carried a frame
        }
        let s = self.stats.snapshot();
        self.recorder.add("net.frames.sent", s.sent);
        self.recorder.add("net.frames.dropped", s.dropped);
        self.recorder.add("net.frames.duplicated", s.duplicated);
        self.recorder.add("net.frames.corrupted", s.corrupted);
        for ((from, to), record) in links.iter() {
            let s = record.snapshot();
            self.recorder.add("net.bytes.sent", s.bytes);
            let key = |field: &str| format!("net.link.{from}->{to}.{field}");
            self.recorder.add(&key("sent"), s.sent);
            self.recorder.add(&key("bytes"), s.bytes);
            self.recorder.add(&key("digest"), s.digest);
            if s.dropped > 0 {
                self.recorder.add(&key("dropped"), s.dropped);
            }
            if s.duplicated > 0 {
                self.recorder.add(&key("duplicated"), s.duplicated);
            }
            if s.delivered_corrupted > 0 {
                self.recorder.add(&key("corrupted"), s.delivered_corrupted);
            }
        }
        for (key, value) in extra {
            self.recorder.add(key, *value);
        }
    }
}

// ----- the backend abstraction -----

/// A message fabric connecting the parties of a deployment: the
/// send/recv/link-stats/metrics-publication surface protocol drivers
/// program against.
///
/// # Contract
///
/// * **Ordering.** Per-sender FIFO is the only order protocols may
///   rely on, on any backend: frames from one sender to one recipient
///   arrive in send order; cross-sender interleaving is a schedule
///   artifact (token queue, OS scheduler, or TCP timing).
/// * **Accounting.** Every submitted frame is counted in
///   [`Fabric::fault_stats`] and the per-link [`Fabric::link_stats`]
///   at the send site, before delivery can fail — so two backends fed
///   the same transcript report identical counters.
/// * **Metrics.** The fabric folds its counters into its recorder
///   exactly once, when the last handle (fabric clones and endpoints
///   alike) drops. Backends may add keys under their own namespace
///   (e.g. `net.wire.*`) but never diverge the shared `net.frames.*` /
///   `net.bytes.*` / `net.link.*` families.
/// * **Delivery failure.** Sends to an unregistered party fail with
///   [`TransportError::UnknownParty`]. Detection of a *departed* peer
///   may be asynchronous on a socket backend (buffered writes succeed
///   before the broken pipe surfaces), where the in-process fabric
///   fails synchronously.
pub trait Fabric: Send + Sync {
    /// Registers a party and returns its endpoint. Re-registering a
    /// name replaces the previous endpoint (the old receiver
    /// disconnects).
    fn register(&self, id: PartyId) -> Endpoint;

    /// Removes a party from the fabric.
    fn deregister(&self, id: &PartyId);

    /// All registered party ids, sorted.
    fn parties(&self) -> Vec<PartyId>;

    /// Current fault-injection statistics.
    fn fault_stats(&self) -> FaultStats;

    /// Current per-link statistics, in `(from, to)` order.
    fn link_stats(&self) -> Vec<((PartyId, PartyId), LinkStats)>;
}

/// A backend's send half: serialize, roll faults, account, deliver.
pub(crate) trait SendPort: Send + Sync {
    fn deliver(&self, from: &PartyId, to: &PartyId, frame: &Frame) -> Result<(), TransportError>;
}

/// A backend's receive half for one registered party.
pub(crate) trait RecvPort: Send {
    fn recv_wire(&self) -> Result<WireMessage, TransportError>;
    fn try_recv_wire(&self) -> Result<WireMessage, TransportError>;
    fn pending(&self) -> usize;
}

/// Which [`Fabric`] backend a round should run over. `Copy`, so round
/// configurations stay cheap to clone and rebuild; the fabric itself
/// is constructed at round start via [`FabricChoice::build_obs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FabricChoice {
    /// The default in-process switchboard: per-link mailboxes.
    #[default]
    PerLink,
    /// The legacy single-lock in-process delivery path — the
    /// comparison baseline for the fault-injection regression tests.
    SingleLock,
    /// The socket-backed fabric ([`crate::wire`]): real TCP loopback
    /// links, optionally shaped. Rounds over this backend must run
    /// threaded (blocking receives) — the deterministic scheduler
    /// cannot see frames that are still in flight on a socket.
    Wire(WireShape),
}

impl FabricChoice {
    /// Builds the chosen backend with a detached recorder.
    pub fn build(self, faults: FaultConfig) -> Arc<dyn Fabric> {
        self.build_obs(faults, Recorder::new())
    }

    /// Builds the chosen backend, publishing its counters into
    /// `recorder` when the fabric is dropped.
    pub fn build_obs(self, faults: FaultConfig, recorder: Recorder) -> Arc<dyn Fabric> {
        match self {
            FabricChoice::PerLink => Arc::new(Switchboard::with_faults_obs(faults, recorder)),
            FabricChoice::SingleLock => {
                Arc::new(Switchboard::single_lock_with_faults_obs(faults, recorder))
            }
            FabricChoice::Wire(shape) => Arc::new(crate::wire::WireFabric::with_shape_obs(
                shape, faults, recorder,
            )),
        }
    }

    /// True for the socket-backed backend.
    pub fn is_wire(&self) -> bool {
        matches!(self, FabricChoice::Wire(_))
    }

    /// Parses the CLI spelling: `per-link`, `single-lock`, `wire`, or
    /// `wire:<latency_ms>[,<bw_kbps>]`.
    pub fn parse(s: &str) -> Option<FabricChoice> {
        match s {
            "per-link" => Some(FabricChoice::PerLink),
            "single-lock" => Some(FabricChoice::SingleLock),
            "wire" => Some(FabricChoice::Wire(WireShape::default())),
            other => {
                let rest = other.strip_prefix("wire:")?;
                let (lat, bw) = match rest.split_once(',') {
                    Some((l, b)) => (l.trim().parse().ok()?, b.trim().parse().ok()?),
                    None => (rest.trim().parse().ok()?, 0),
                };
                Some(FabricChoice::Wire(WireShape {
                    latency_ms: lat,
                    bw_kbps: bw,
                }))
            }
        }
    }
}

impl fmt::Display for FabricChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricChoice::PerLink => write!(f, "per-link"),
            FabricChoice::SingleLock => write!(f, "single-lock"),
            FabricChoice::Wire(shape) if *shape == WireShape::default() => write!(f, "wire"),
            FabricChoice::Wire(shape) => {
                write!(f, "wire:{},{}", shape.latency_ms, shape.bw_kbps)
            }
        }
    }
}

/// Deterministic latency/bandwidth shaping for the wire backend: each
/// frame's send is delayed by `latency_ms` plus its serialization time
/// at `bw_kbps`, computed purely from the configuration and the
/// frame's byte length — no clock is read, so two runs of the same
/// round see the identical delay schedule. Shaping changes wall-clock
/// only (measurable via the profiling spans and the per-link byte
/// counters); it can never change a transcript byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireShape {
    /// One-way per-frame latency in milliseconds (0 = none).
    pub latency_ms: u32,
    /// Link bandwidth in kilobits per second (0 = unshaped).
    pub bw_kbps: u32,
}

impl WireShape {
    /// The deterministic delay for one frame of `wire_len` bytes.
    pub fn delay_ms(&self, wire_len: usize) -> u64 {
        let serialization = if self.bw_kbps == 0 {
            0
        } else {
            (wire_len as u64 * 8) / self.bw_kbps as u64
        };
        self.latency_ms as u64 + serialization
    }
}

// ----- the in-process backend -----

/// One ordered `(from, to)` link: its queued wire frames and its own
/// fault RNG. Senders on different links never touch each other's state.
struct LinkMailbox {
    queue: Mutex<VecDeque<Vec<u8>>>,
    rng: Mutex<StdRng>,
}

/// A registered party's receiving side, per-link mode.
struct PartySlot {
    /// One token per queued frame; its order decides cross-link arrival
    /// order and its disconnection mirrors deregistration.
    token_tx: Sender<PartyId>,
    /// Per-sender mailboxes, created lazily on first frame.
    // lint:allow(unordered-map) keyed lookup only; the one key iteration (parties()) sorts before returning
    links: Arc<Mutex<HashMap<PartyId, Arc<LinkMailbox>>>>,
}

/// Per-link delivery state.
struct PerLinkDelivery {
    // lint:allow(unordered-map) keyed lookup only; the one key iteration (parties()) sorts before returning
    parties: Mutex<HashMap<PartyId, PartySlot>>,
}

/// The original single-lock delivery state: one channel per recipient,
/// one global fault RNG, everything serialized through one mutex.
struct SingleLockDelivery {
    // lint:allow(unordered-map) keyed lookup only; the one key iteration (parties()) sorts before returning
    channels: HashMap<PartyId, Sender<WireMessage>>,
    rng: StdRng,
}

enum Delivery {
    PerLink(PerLinkDelivery),
    SingleLock(Mutex<SingleLockDelivery>),
}

struct BoardInner {
    delivery: Delivery,
    faults: FaultConfig,
    ledger: LinkLedger,
}

impl Drop for BoardInner {
    /// Every board publishes its metrics exactly once, when the last
    /// handle goes away — round runners drop their boards at round end
    /// on success *and* abort paths alike, so no path skips accounting.
    fn drop(&mut self) {
        self.ledger.publish_metrics(&[]);
    }
}

/// The in-memory message fabric connecting all parties of a deployment.
#[derive(Clone)]
pub struct Switchboard {
    inner: Arc<BoardInner>,
}

impl Default for Switchboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Switchboard {
    /// Creates a lossless switchboard (per-link delivery).
    pub fn new() -> Switchboard {
        Switchboard::with_faults(FaultConfig::none())
    }

    /// Creates a per-link switchboard with fault injection enabled.
    /// Metrics go to a private, unobserved recorder; use
    /// [`Switchboard::with_faults_obs`] to publish them.
    pub fn with_faults(faults: FaultConfig) -> Switchboard {
        Switchboard::with_faults_obs(faults, Recorder::new())
    }

    /// Like [`Switchboard::with_faults`], publishing the board's frame
    /// and per-link counters into `recorder` when the board is dropped.
    pub fn with_faults_obs(faults: FaultConfig, recorder: Recorder) -> Switchboard {
        Switchboard {
            inner: Arc::new(BoardInner {
                delivery: Delivery::PerLink(PerLinkDelivery {
                    // lint:allow(unordered-map) see the PerLinkDelivery field note
                    parties: Mutex::new(HashMap::new()),
                }),
                faults,
                ledger: LinkLedger::new(recorder),
            }),
        }
    }

    /// Creates a switchboard with the legacy single-lock delivery path:
    /// all sends serialize behind one mutex and share one fault RNG in
    /// delivery order. Kept as the regression baseline the per-link
    /// fabric is tested against.
    pub fn single_lock_with_faults(faults: FaultConfig) -> Switchboard {
        Switchboard::single_lock_with_faults_obs(faults, Recorder::new())
    }

    /// Like [`Switchboard::single_lock_with_faults`], publishing into
    /// `recorder` when the board is dropped.
    pub fn single_lock_with_faults_obs(faults: FaultConfig, recorder: Recorder) -> Switchboard {
        Switchboard {
            inner: Arc::new(BoardInner {
                delivery: Delivery::SingleLock(Mutex::new(SingleLockDelivery {
                    // lint:allow(unordered-map) see the SingleLockDelivery field note
                    channels: HashMap::new(),
                    rng: StdRng::seed_from_u64(faults.seed),
                })),
                faults,
                ledger: LinkLedger::new(recorder),
            }),
        }
    }

    /// Registers a party and returns its endpoint. Re-registering a name
    /// replaces the previous endpoint (the old receiver disconnects).
    pub fn register(&self, id: impl Into<PartyId>) -> Endpoint {
        let id = id.into();
        let recv: Box<dyn RecvPort> = match &self.inner.delivery {
            Delivery::PerLink(delivery) => {
                let (token_tx, token_rx) = unbounded();
                // lint:allow(unordered-map) see the PartySlot::links field note
                let links = Arc::new(Mutex::new(HashMap::new()));
                delivery.parties.lock().insert(
                    id.clone(),
                    PartySlot {
                        token_tx,
                        links: Arc::clone(&links),
                    },
                );
                Box::new(RecvHalf::PerLink { token_rx, links })
            }
            Delivery::SingleLock(delivery) => {
                let (tx, rx) = unbounded();
                delivery.lock().channels.insert(id.clone(), tx);
                Box::new(RecvHalf::SingleLock { rx })
            }
        };
        Endpoint::from_parts(id, Arc::new(self.clone()), recv)
    }

    /// Removes a party from the fabric.
    pub fn deregister(&self, id: &PartyId) {
        match &self.inner.delivery {
            Delivery::PerLink(delivery) => {
                delivery.parties.lock().remove(id);
            }
            Delivery::SingleLock(delivery) => {
                delivery.lock().channels.remove(id);
            }
        }
    }

    /// All registered party ids, sorted.
    pub fn parties(&self) -> Vec<PartyId> {
        let mut v: Vec<PartyId> = match &self.inner.delivery {
            Delivery::PerLink(delivery) => delivery.parties.lock().keys().cloned().collect(),
            Delivery::SingleLock(delivery) => delivery.lock().channels.keys().cloned().collect(),
        };
        v.sort();
        v
    }

    /// Current fault-injection statistics.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.ledger.fault_stats()
    }

    /// Current per-link statistics, in `(from, to)` order.
    pub fn link_stats(&self) -> Vec<((PartyId, PartyId), LinkStats)> {
        self.inner.ledger.link_stats()
    }

    fn deliver(&self, from: &PartyId, to: &PartyId, frame: &Frame) -> Result<(), TransportError> {
        let mut wire = frame.to_wire().to_vec();
        let record = self.inner.ledger.tally_send(from, to, &wire);
        let stats = self.inner.ledger.stats();
        match &self.inner.delivery {
            Delivery::PerLink(delivery) => {
                // Clone the recipient's handles out of the registry so the
                // registry lock is never held across serialization, fault
                // rolls, or queue pushes.
                let (token_tx, links) = {
                    let parties = delivery.parties.lock();
                    let slot = parties
                        .get(to)
                        .ok_or_else(|| TransportError::UnknownParty(to.0.clone()))?;
                    (slot.token_tx.clone(), Arc::clone(&slot.links))
                };
                let link = {
                    let mut links = links.lock();
                    Arc::clone(links.entry(from.clone()).or_insert_with(|| {
                        Arc::new(LinkMailbox {
                            queue: Mutex::new(VecDeque::new()),
                            rng: Mutex::new(StdRng::seed_from_u64(link_seed(
                                self.inner.faults.seed,
                                from,
                                to,
                            ))),
                        })
                    }))
                };
                let verdict = {
                    let mut rng = link.rng.lock();
                    roll_faults(&self.inner.faults, &mut rng, &mut wire, stats)
                };
                LinkLedger::tally_verdict(&record, &verdict);
                let copies = match verdict {
                    Verdict::Drop => return Ok(()),
                    Verdict::Deliver { copies, .. } => copies,
                };
                for _ in 0..copies {
                    // Reserve-then-commit: the frame push and its
                    // delivery token must land together. If the
                    // receiver disconnected mid-round the token send
                    // fails — roll the push back, or the orphaned
                    // frame would shift per-sender FIFO for every
                    // later delivery on this link.
                    let mut queue = link.queue.lock();
                    queue.push_back(wire.clone());
                    if token_tx.send(from.clone()).is_err() {
                        queue.pop_back();
                        return Err(TransportError::Disconnected);
                    }
                }
                Ok(())
            }
            Delivery::SingleLock(delivery) => {
                let mut inner = delivery.lock();
                let verdict = roll_faults(&self.inner.faults, &mut inner.rng, &mut wire, stats);
                LinkLedger::tally_verdict(&record, &verdict);
                let copies = match verdict {
                    Verdict::Drop => return Ok(()),
                    Verdict::Deliver { copies, .. } => copies,
                };
                let tx = inner
                    .channels
                    .get(to)
                    .ok_or_else(|| TransportError::UnknownParty(to.0.clone()))?
                    .clone();
                drop(inner);
                for _ in 0..copies {
                    tx.send((from.clone(), wire.clone()))
                        .map_err(|_| TransportError::Disconnected)?;
                }
                Ok(())
            }
        }
    }
}

impl SendPort for Switchboard {
    fn deliver(&self, from: &PartyId, to: &PartyId, frame: &Frame) -> Result<(), TransportError> {
        Switchboard::deliver(self, from, to, frame)
    }
}

impl Fabric for Switchboard {
    fn register(&self, id: PartyId) -> Endpoint {
        Switchboard::register(self, id)
    }

    fn deregister(&self, id: &PartyId) {
        Switchboard::deregister(self, id)
    }

    fn parties(&self) -> Vec<PartyId> {
        Switchboard::parties(self)
    }

    fn fault_stats(&self) -> FaultStats {
        Switchboard::fault_stats(self)
    }

    fn link_stats(&self) -> Vec<((PartyId, PartyId), LinkStats)> {
        Switchboard::link_stats(self)
    }
}

/// A party's receiving machinery, matching the board's delivery mode.
enum RecvHalf {
    PerLink {
        token_rx: Receiver<PartyId>,
        // lint:allow(unordered-map) see the PartySlot::links field note
        links: Arc<Mutex<HashMap<PartyId, Arc<LinkMailbox>>>>,
    },
    SingleLock {
        rx: Receiver<WireMessage>,
    },
}

impl RecvHalf {
    fn pop_link(
        // lint:allow(unordered-map) see the PartySlot::links field note
        links: &Mutex<HashMap<PartyId, Arc<LinkMailbox>>>,
        from: PartyId,
    ) -> Result<(PartyId, Vec<u8>), TransportError> {
        let link = links.lock().get(&from).map(Arc::clone).ok_or_else(|| {
            TransportError::Desync(format!("delivery token from {from} names an unknown link"))
        })?;
        let wire = link.queue.lock().pop_front().ok_or_else(|| {
            TransportError::Desync(format!(
                "delivery token from {from} arrived but the link queue is empty"
            ))
        })?;
        Ok((from, wire))
    }
}

impl RecvPort for RecvHalf {
    fn recv_wire(&self) -> Result<WireMessage, TransportError> {
        match self {
            RecvHalf::PerLink { token_rx, links } => {
                let from = token_rx.recv().map_err(|_| TransportError::Disconnected)?;
                Self::pop_link(links, from)
            }
            RecvHalf::SingleLock { rx } => rx.recv().map_err(|_| TransportError::Disconnected),
        }
    }

    fn try_recv_wire(&self) -> Result<WireMessage, TransportError> {
        let map_err = |e| match e {
            TryRecvError::Empty => TransportError::Empty,
            TryRecvError::Disconnected => TransportError::Disconnected,
        };
        match self {
            RecvHalf::PerLink { token_rx, links } => {
                let from = token_rx.try_recv().map_err(map_err)?;
                Self::pop_link(links, from)
            }
            RecvHalf::SingleLock { rx } => rx.try_recv().map_err(map_err),
        }
    }

    fn pending(&self) -> usize {
        match self {
            RecvHalf::PerLink { token_rx, .. } => token_rx.len(),
            RecvHalf::SingleLock { rx } => rx.len(),
        }
    }
}

/// A party's handle on its fabric: send to anyone, receive your own
/// mailbox. Backend-generic — the same endpoint type fronts the
/// in-process switchboard and the socket fabric.
pub struct Endpoint {
    id: PartyId,
    send: Arc<dyn SendPort>,
    recv: Box<dyn RecvPort>,
}

impl Endpoint {
    pub(crate) fn from_parts(
        id: PartyId,
        send: Arc<dyn SendPort>,
        recv: Box<dyn RecvPort>,
    ) -> Endpoint {
        Endpoint { id, send, recv }
    }

    /// This endpoint's party id.
    pub fn id(&self) -> &PartyId {
        &self.id
    }

    /// Sends a frame to `to`.
    pub fn send(&self, to: &PartyId, frame: Frame) -> Result<(), TransportError> {
        self.send.deliver(&self.id, to, &frame)
    }

    /// Sends a frame to every party in `to`.
    pub fn broadcast(&self, to: &[PartyId], frame: Frame) -> Result<(), TransportError> {
        for t in to {
            self.send(t, frame.clone())?;
        }
        Ok(())
    }

    /// Blocking receive. Frames that fail to parse are surfaced as
    /// [`TransportError::Wire`] so callers can count/ignore them.
    pub fn recv(&self) -> Result<Envelope, TransportError> {
        let (from, wire) = self.recv.recv_wire()?;
        match Frame::from_wire(wire.into()) {
            Ok(frame) => Ok(Envelope { from, frame }),
            Err(e) => Err(TransportError::Wire(e)),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, TransportError> {
        let (from, wire) = self.recv.try_recv_wire()?;
        match Frame::from_wire(wire.into()) {
            Ok(frame) => Ok(Envelope { from, frame }),
            Err(e) => Err(TransportError::Wire(e)),
        }
    }

    /// Number of messages waiting (approximate under concurrency).
    pub fn pending(&self) -> usize {
        self.recv.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(t: u16, body: &'static [u8]) -> Frame {
        Frame::new(t, Bytes::from_static(body))
    }

    /// Both delivery modes, for tests that must hold on either.
    fn boards_with(faults: FaultConfig) -> [(&'static str, Switchboard); 2] {
        [
            ("per-link", Switchboard::with_faults(faults)),
            ("single-lock", Switchboard::single_lock_with_faults(faults)),
        ]
    }

    #[test]
    fn basic_send_recv() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            let b = board.register("b");
            a.send(b.id(), frame(1, b"hi")).unwrap();
            let env = b.recv().unwrap();
            assert_eq!(env.from.as_str(), "a", "{mode}");
            assert_eq!(env.frame.msg_type, 1, "{mode}");
            assert_eq!(env.frame.payload.as_ref(), b"hi", "{mode}");
        }
    }

    #[test]
    fn unknown_party_errors() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            let err = a.send(&PartyId::new("ghost"), frame(1, b"x")).unwrap_err();
            assert_eq!(err, TransportError::UnknownParty("ghost".into()), "{mode}");
        }
    }

    #[test]
    fn broadcast_reaches_all() {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        let c = board.register("c");
        a.broadcast(&[b.id().clone(), c.id().clone()], frame(9, b"all"))
            .unwrap();
        assert_eq!(b.recv().unwrap().frame.msg_type, 9);
        assert_eq!(c.recv().unwrap().frame.msg_type, 9);
    }

    #[test]
    fn try_recv_empty() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            assert_eq!(a.try_recv().unwrap_err(), TransportError::Empty, "{mode}");
        }
    }

    #[test]
    fn fifo_per_sender() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            let b = board.register("b");
            for i in 0..10u16 {
                a.send(b.id(), frame(i, b"seq")).unwrap();
            }
            for i in 0..10u16 {
                assert_eq!(b.recv().unwrap().frame.msg_type, i, "{mode}");
            }
        }
    }

    #[test]
    fn interleaved_links_preserve_per_link_fifo() {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        let c = board.register("c");
        for i in 0..5u16 {
            a.send(c.id(), frame(i, b"a")).unwrap();
            b.send(c.id(), frame(100 + i, b"b")).unwrap();
        }
        let mut from_a = Vec::new();
        let mut from_b = Vec::new();
        for _ in 0..10 {
            let env = c.recv().unwrap();
            match env.from.as_str() {
                "a" => from_a.push(env.frame.msg_type),
                _ => from_b.push(env.frame.msg_type),
            }
        }
        assert_eq!(from_a, vec![0, 1, 2, 3, 4]);
        assert_eq!(from_b, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn drop_faults_lose_messages() {
        for (mode, board) in boards_with(FaultConfig {
            drop_chance: 1.0,
            ..Default::default()
        }) {
            let a = board.register("a");
            let b = board.register("b");
            a.send(b.id(), frame(1, b"gone")).unwrap();
            assert_eq!(b.try_recv().unwrap_err(), TransportError::Empty, "{mode}");
            assert_eq!(board.fault_stats().dropped, 1, "{mode}");
        }
    }

    #[test]
    fn corrupt_faults_caught_by_checksum() {
        for (mode, board) in boards_with(FaultConfig {
            corrupt_chance: 1.0,
            seed: 3,
            ..Default::default()
        }) {
            let a = board.register("a");
            let b = board.register("b");
            a.send(b.id(), frame(1, b"precious data")).unwrap();
            match b.recv() {
                Err(TransportError::Wire(_)) => {}
                other => panic!("{mode}: corruption not detected: {other:?}"),
            }
            assert_eq!(board.fault_stats().corrupted, 1, "{mode}");
        }
    }

    #[test]
    fn duplicate_faults_deliver_twice() {
        for (mode, board) in boards_with(FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        }) {
            let a = board.register("a");
            let b = board.register("b");
            a.send(b.id(), frame(1, b"twice")).unwrap();
            assert!(b.recv().is_ok(), "{mode}");
            assert!(b.recv().is_ok(), "{mode}");
            assert_eq!(b.try_recv().unwrap_err(), TransportError::Empty, "{mode}");
        }
    }

    #[test]
    fn deterministic_fault_schedule() {
        for single_lock in [false, true] {
            let run = |seed| {
                let faults = FaultConfig {
                    drop_chance: 0.5,
                    seed,
                    ..Default::default()
                };
                let board = if single_lock {
                    Switchboard::single_lock_with_faults(faults)
                } else {
                    Switchboard::with_faults(faults)
                };
                let a = board.register("a");
                let b = board.register("b");
                for _ in 0..100 {
                    a.send(b.id(), frame(1, b"x")).unwrap();
                }
                board.fault_stats().dropped
            };
            assert_eq!(run(7), run(7));
            assert_ne!(run(7), run(8)); // overwhelmingly likely
        }
    }

    #[test]
    fn per_link_fault_schedule_is_link_independent() {
        // The schedule a→c sees must not depend on unrelated traffic
        // b→c interleaved with it (the single-lock board's global RNG
        // could not provide this).
        let faults = FaultConfig {
            drop_chance: 0.5,
            seed: 11,
            ..Default::default()
        };
        let delivered_alone = {
            let board = Switchboard::with_faults(faults);
            let a = board.register("a");
            let c = board.register("c");
            for i in 0..50u16 {
                a.send(c.id(), frame(i, b"x")).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(env) = c.try_recv() {
                got.push(env.frame.msg_type);
            }
            got
        };
        let delivered_interleaved = {
            let board = Switchboard::with_faults(faults);
            let a = board.register("a");
            let b = board.register("b");
            let c = board.register("c");
            for i in 0..50u16 {
                a.send(c.id(), frame(i, b"x")).unwrap();
                b.send(c.id(), frame(1000, b"noise")).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(env) = c.try_recv() {
                if env.from.as_str() == "a" {
                    got.push(env.frame.msg_type);
                }
            }
            got
        };
        assert_eq!(delivered_alone, delivered_interleaved);
        assert!(!delivered_alone.is_empty() && delivered_alone.len() < 50);
    }

    #[test]
    fn cross_thread_delivery() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            let b = board.register("b");
            let handle = std::thread::spawn(move || {
                let env = b.recv().unwrap();
                env.frame.msg_type
            });
            a.send(&PartyId::new("b"), frame(42, b"cross-thread"))
                .unwrap();
            assert_eq!(handle.join().unwrap(), 42, "{mode}");
        }
    }

    #[test]
    fn deregistered_party_disconnects() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            let b = board.register("b");
            a.send(b.id(), frame(1, b"before")).unwrap();
            board.deregister(&PartyId::new("b"));
            // Queued traffic drains, then the receiver observes the
            // disconnection; new sends see an unknown party.
            assert!(b.recv().is_ok(), "{mode}");
            assert_eq!(
                b.recv().unwrap_err(),
                TransportError::Disconnected,
                "{mode}"
            );
            assert_eq!(
                a.send(&PartyId::new("b"), frame(2, b"after")).unwrap_err(),
                TransportError::UnknownParty("b".into()),
                "{mode}"
            );
        }
    }

    #[test]
    fn disconnect_mid_round_errors_on_both_fabrics() {
        // A receiver whose endpoint is gone (process died mid-round)
        // but which was never deregistered: sends must fail loudly
        // with Disconnected on either fabric, not succeed silently.
        for (mode, board) in boards_with(FaultConfig::none()) {
            let a = board.register("a");
            let b = board.register("b");
            drop(b);
            for _ in 0..3 {
                assert_eq!(
                    a.send(&PartyId::new("b"), frame(1, b"mid-round"))
                        .unwrap_err(),
                    TransportError::Disconnected,
                    "{mode}"
                );
            }
        }
    }

    #[test]
    fn failed_token_send_rolls_back_queued_frame() {
        // White box: after a failed delivery the per-link queue must
        // not retain the orphaned frame — an orphan would shift
        // per-sender FIFO for every later frame on the link.
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        // Establish the a→b link mailbox with a real delivery first.
        a.send(b.id(), frame(1, b"live")).unwrap();
        assert_eq!(b.recv().unwrap().frame.msg_type, 1);
        let links = match &board.inner.delivery {
            Delivery::PerLink(delivery) => Arc::clone(
                &delivery
                    .parties
                    .lock()
                    .get(&PartyId::new("b"))
                    .unwrap()
                    .links,
            ),
            Delivery::SingleLock(_) => unreachable!("per-link board"),
        };
        drop(b);
        for _ in 0..3 {
            assert_eq!(
                a.send(&PartyId::new("b"), frame(2, b"orphan")).unwrap_err(),
                TransportError::Disconnected
            );
        }
        let link = Arc::clone(links.lock().get(&PartyId::new("a")).unwrap());
        assert_eq!(
            link.queue.lock().len(),
            0,
            "failed deliveries left orphaned frames queued"
        );
    }

    #[test]
    fn link_stats_track_per_link_outcomes() {
        for (mode, board) in boards_with(FaultConfig {
            corrupt_chance: 1.0,
            seed: 3,
            ..Default::default()
        }) {
            let a = board.register("a");
            let b = board.register("b");
            let c = board.register("c");
            a.send(b.id(), frame(1, b"to b")).unwrap();
            a.send(c.id(), frame(1, b"to c!")).unwrap();
            a.send(c.id(), frame(1, b"to c again")).unwrap();
            let stats = board.link_stats();
            assert_eq!(stats.len(), 2, "{mode}");
            let ab = &stats[0];
            assert_eq!(ab.0, (PartyId::new("a"), PartyId::new("b")), "{mode}");
            assert_eq!(ab.1.sent, 1, "{mode}");
            let ac = &stats[1];
            assert_eq!(ac.0, (PartyId::new("a"), PartyId::new("c")), "{mode}");
            assert_eq!(ac.1.sent, 2, "{mode}");
            assert!(ac.1.bytes > ab.1.bytes, "{mode}");
            // Every delivery was corrupted-then-delivered, and the
            // stats say so — corrupted copies are not folded into the
            // clean count.
            assert_eq!(ab.1.delivered_corrupted, 1, "{mode}");
            assert_eq!(ab.1.delivered_clean, 0, "{mode}");
            assert_eq!(ac.1.delivered_corrupted, 2, "{mode}");
        }
    }

    #[test]
    fn link_stats_split_drop_and_duplicate_outcomes() {
        let board = Switchboard::with_faults(FaultConfig {
            drop_chance: 1.0,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        a.send(b.id(), frame(1, b"gone")).unwrap();
        let stats = board.link_stats();
        assert_eq!(stats[0].1.dropped, 1);
        assert_eq!(
            stats[0].1.delivered_clean + stats[0].1.delivered_corrupted,
            0
        );

        let board = Switchboard::with_faults(FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        a.send(b.id(), frame(1, b"twice")).unwrap();
        let stats = board.link_stats();
        assert_eq!(stats[0].1.duplicated, 1);
        assert_eq!(stats[0].1.delivered_clean, 2);
    }

    #[test]
    fn link_digest_tracks_send_order_and_content() {
        // The transcript digest is a pure function of the link's sent
        // wire bytes, in order: same sends → same digest, reordered or
        // altered sends → different digest.
        let send_seq = |msgs: &[(u16, &'static [u8])]| {
            let board = Switchboard::new();
            let a = board.register("a");
            let b = board.register("b");
            for (t, body) in msgs {
                a.send(b.id(), Frame::new(*t, Bytes::from_static(body)))
                    .unwrap();
            }
            board.link_stats()[0].1.digest
        };
        let base = send_seq(&[(1, b"x"), (2, b"y")]);
        assert_eq!(base, send_seq(&[(1, b"x"), (2, b"y")]));
        assert_ne!(base, send_seq(&[(2, b"y"), (1, b"x")]));
        assert_ne!(base, send_seq(&[(1, b"x"), (2, b"z")]));
    }

    #[test]
    fn dropping_the_board_publishes_metrics_once() {
        let rec = Recorder::new();
        {
            let board = Switchboard::with_faults_obs(FaultConfig::none(), rec.clone());
            let a = board.register("a");
            let b = board.register("b");
            a.send(b.id(), frame(1, b"counted")).unwrap();
            let _ = b.recv().unwrap();
            // Endpoints hold board clones; nothing published yet.
            assert_eq!(rec.read_counter("net.frames.sent"), 0);
        }
        assert_eq!(rec.read_counter("net.frames.sent"), 1);
        assert_eq!(rec.read_counter("net.link.a->b.sent"), 1);
        assert!(rec.read_counter("net.bytes.sent") > 0);
        assert!(rec.read_counter("net.link.a->b.digest") > 0);
        assert_eq!(rec.read_counter("net.frames.dropped"), 0);
        // Fault-outcome link keys appear only when the outcome occurred.
        assert!(rec
            .read_snapshot()
            .entries
            .iter()
            .all(|(k, _)| !k.ends_with(".corrupted") || !k.starts_with("net.link.")));
    }

    #[test]
    fn unused_board_publishes_nothing() {
        let rec = Recorder::new();
        drop(Switchboard::with_faults_obs(
            FaultConfig::none(),
            rec.clone(),
        ));
        assert!(rec.read_snapshot().entries.is_empty());
    }

    #[test]
    fn parties_listing() {
        for (mode, board) in boards_with(FaultConfig::none()) {
            let _a = board.register("ts");
            let _b = board.register("dc-1");
            let _c = board.register("sk-1");
            assert_eq!(
                board.parties(),
                vec![
                    PartyId::new("dc-1"),
                    PartyId::new("sk-1"),
                    PartyId::new("ts")
                ],
                "{mode}"
            );
            board.deregister(&PartyId::new("dc-1"));
            assert_eq!(board.parties().len(), 2, "{mode}");
        }
    }

    #[test]
    fn fabric_choice_parses_cli_spellings() {
        assert_eq!(FabricChoice::parse("per-link"), Some(FabricChoice::PerLink));
        assert_eq!(
            FabricChoice::parse("single-lock"),
            Some(FabricChoice::SingleLock)
        );
        assert_eq!(
            FabricChoice::parse("wire"),
            Some(FabricChoice::Wire(WireShape::default()))
        );
        assert_eq!(
            FabricChoice::parse("wire:50,1000"),
            Some(FabricChoice::Wire(WireShape {
                latency_ms: 50,
                bw_kbps: 1000
            }))
        );
        assert_eq!(
            FabricChoice::parse("wire:5"),
            Some(FabricChoice::Wire(WireShape {
                latency_ms: 5,
                bw_kbps: 0
            }))
        );
        assert_eq!(FabricChoice::parse("carrier-pigeon"), None);
        assert_eq!(FabricChoice::parse("wire:fast"), None);
        // Display round-trips through parse.
        for s in ["per-link", "single-lock", "wire", "wire:50,1000"] {
            let c = FabricChoice::parse(s).unwrap();
            assert_eq!(FabricChoice::parse(&c.to_string()), Some(c), "{s}");
        }
    }

    #[test]
    fn wire_shape_delay_is_latency_plus_serialization() {
        let unshaped = WireShape::default();
        assert_eq!(unshaped.delay_ms(1 << 20), 0);
        let shaped = WireShape {
            latency_ms: 20,
            bw_kbps: 8,
        };
        // 1000 bytes = 8000 bits at 8 kbps = 1000 ms, plus latency.
        assert_eq!(shaped.delay_ms(1000), 1020);
        let latency_only = WireShape {
            latency_ms: 7,
            bw_kbps: 0,
        };
        assert_eq!(latency_only.delay_ms(123_456), 7);
    }

    #[test]
    fn fabric_trait_object_round_trip() {
        // The trait surface alone suffices to run a delivery.
        let board: Arc<dyn Fabric> = FabricChoice::PerLink.build(FaultConfig::none());
        let a = board.register(PartyId::new("a"));
        let b = board.register(PartyId::new("b"));
        a.send(b.id(), frame(4, b"dyn")).unwrap();
        assert_eq!(b.recv().unwrap().frame.msg_type, 4);
        assert_eq!(board.fault_stats().sent, 1);
        assert_eq!(board.link_stats().len(), 1);
        assert_eq!(board.parties().len(), 2);
    }
}
