//! In-memory transport: the [`Switchboard`] message fabric and the
//! fault-injection layer.
//!
//! Every party registers under a [`PartyId`] and receives an
//! [`Endpoint`]. Sends serialize the frame to wire bytes and enqueue them
//! on the recipient's channel; receives parse and checksum-verify. The
//! serialize/parse round trip through real wire bytes is deliberate: it
//! keeps the codecs honest and gives fault injection something faithful
//! to corrupt.

use crate::frame::{Frame, WireError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A party's stable name on the fabric (e.g. `"ts"`, `"sk-1"`, `"dc-7"`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId(pub String);

impl PartyId {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> PartyId {
        PartyId(s.into())
    }

    /// The party name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PartyId {
    fn from(s: &str) -> PartyId {
        PartyId(s.to_string())
    }
}

/// A received message: sender plus frame.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Who sent it.
    pub from: PartyId,
    /// The delivered frame.
    pub frame: Frame,
}

/// Transport-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Recipient is not registered on the switchboard.
    UnknownParty(String),
    /// The party's channel is closed (it has shut down).
    Disconnected,
    /// No message available (non-blocking receive).
    Empty,
    /// The received bytes failed to parse as a frame.
    Wire(WireError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownParty(p) => write!(f, "unknown party: {p}"),
            TransportError::Disconnected => write!(f, "party disconnected"),
            TransportError::Empty => write!(f, "no message available"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Fault-injection knobs, mirroring smoltcp's example options.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a sent frame is silently dropped.
    pub drop_chance: f64,
    /// Probability a sent frame is delivered twice.
    pub duplicate_chance: f64,
    /// Probability one byte of the frame is flipped in flight.
    pub corrupt_chance: f64,
    /// RNG seed for deterministic fault schedules.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            duplicate_chance: 0.0,
            corrupt_chance: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A lossless configuration (the default).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// True if any fault is possible.
    pub fn is_active(&self) -> bool {
        self.drop_chance > 0.0 || self.duplicate_chance > 0.0 || self.corrupt_chance > 0.0
    }
}

type WireMessage = (PartyId, Vec<u8>);

struct SwitchboardInner {
    channels: HashMap<PartyId, Sender<WireMessage>>,
    faults: FaultConfig,
    rng: StdRng,
    /// Counters for observability: (sent, dropped, duplicated, corrupted).
    stats: FaultStats,
}

/// Delivery statistics, for tests and the fault-injection examples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames submitted for delivery.
    pub sent: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Extra deliveries due to duplication.
    pub duplicated: u64,
    /// Frames with a byte flipped.
    pub corrupted: u64,
}

/// The in-memory message fabric connecting all parties of a deployment.
#[derive(Clone)]
pub struct Switchboard {
    inner: Arc<Mutex<SwitchboardInner>>,
}

impl Default for Switchboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Switchboard {
    /// Creates a lossless switchboard.
    pub fn new() -> Switchboard {
        Switchboard::with_faults(FaultConfig::none())
    }

    /// Creates a switchboard with fault injection enabled.
    pub fn with_faults(faults: FaultConfig) -> Switchboard {
        Switchboard {
            inner: Arc::new(Mutex::new(SwitchboardInner {
                channels: HashMap::new(),
                rng: StdRng::seed_from_u64(faults.seed),
                faults,
                stats: FaultStats::default(),
            })),
        }
    }

    /// Registers a party and returns its endpoint. Re-registering a name
    /// replaces the previous endpoint (the old receiver disconnects).
    pub fn register(&self, id: impl Into<PartyId>) -> Endpoint {
        let id = id.into();
        let (tx, rx) = unbounded();
        self.inner.lock().channels.insert(id.clone(), tx);
        Endpoint {
            id,
            board: self.clone(),
            rx,
        }
    }

    /// Removes a party from the fabric.
    pub fn deregister(&self, id: &PartyId) {
        self.inner.lock().channels.remove(id);
    }

    /// All registered party ids, sorted.
    pub fn parties(&self) -> Vec<PartyId> {
        let mut v: Vec<PartyId> = self.inner.lock().channels.keys().cloned().collect();
        v.sort();
        v
    }

    /// Current fault-injection statistics.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.lock().stats
    }

    fn deliver(&self, from: &PartyId, to: &PartyId, frame: &Frame) -> Result<(), TransportError> {
        let mut inner = self.inner.lock();
        inner.stats.sent += 1;
        let mut wire = frame.to_wire().to_vec();
        if inner.faults.is_active() {
            let drop_roll: f64 = inner.rng.gen();
            if drop_roll < inner.faults.drop_chance {
                inner.stats.dropped += 1;
                return Ok(()); // silently dropped, like a lossy link
            }
            let corrupt_roll: f64 = inner.rng.gen();
            if corrupt_roll < inner.faults.corrupt_chance && !wire.is_empty() {
                let idx = inner.rng.gen_range(0..wire.len());
                let bit = inner.rng.gen_range(0..8u32);
                wire[idx] ^= 1u8 << bit;
                inner.stats.corrupted += 1;
            }
        }
        let duplicate = inner.faults.is_active() && {
            let dup_roll: f64 = inner.rng.gen();
            dup_roll < inner.faults.duplicate_chance
        };
        let tx = inner
            .channels
            .get(to)
            .ok_or_else(|| TransportError::UnknownParty(to.0.clone()))?
            .clone();
        if duplicate {
            inner.stats.duplicated += 1;
        }
        drop(inner);
        tx.send((from.clone(), wire.clone()))
            .map_err(|_| TransportError::Disconnected)?;
        if duplicate {
            tx.send((from.clone(), wire))
                .map_err(|_| TransportError::Disconnected)?;
        }
        Ok(())
    }
}

/// A party's handle on the switchboard: send to anyone, receive your own
/// queue.
pub struct Endpoint {
    id: PartyId,
    board: Switchboard,
    rx: Receiver<WireMessage>,
}

impl Endpoint {
    /// This endpoint's party id.
    pub fn id(&self) -> &PartyId {
        &self.id
    }

    /// Sends a frame to `to`.
    pub fn send(&self, to: &PartyId, frame: Frame) -> Result<(), TransportError> {
        self.board.deliver(&self.id, to, &frame)
    }

    /// Sends a frame to every party in `to`.
    pub fn broadcast(&self, to: &[PartyId], frame: Frame) -> Result<(), TransportError> {
        for t in to {
            self.send(t, frame.clone())?;
        }
        Ok(())
    }

    /// Blocking receive. Frames that fail to parse are surfaced as
    /// [`TransportError::Wire`] so callers can count/ignore them.
    pub fn recv(&self) -> Result<Envelope, TransportError> {
        let (from, wire) = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
        match Frame::from_wire(wire.into()) {
            Ok(frame) => Ok(Envelope { from, frame }),
            Err(e) => Err(TransportError::Wire(e)),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, TransportError> {
        let (from, wire) = self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => TransportError::Empty,
            TryRecvError::Disconnected => TransportError::Disconnected,
        })?;
        match Frame::from_wire(wire.into()) {
            Ok(frame) => Ok(Envelope { from, frame }),
            Err(e) => Err(TransportError::Wire(e)),
        }
    }

    /// Number of messages waiting (approximate under concurrency).
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(t: u16, body: &'static [u8]) -> Frame {
        Frame::new(t, Bytes::from_static(body))
    }

    #[test]
    fn basic_send_recv() {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        a.send(b.id(), frame(1, b"hi")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from.as_str(), "a");
        assert_eq!(env.frame.msg_type, 1);
        assert_eq!(env.frame.payload.as_ref(), b"hi");
    }

    #[test]
    fn unknown_party_errors() {
        let board = Switchboard::new();
        let a = board.register("a");
        let err = a.send(&PartyId::new("ghost"), frame(1, b"x")).unwrap_err();
        assert_eq!(err, TransportError::UnknownParty("ghost".into()));
    }

    #[test]
    fn broadcast_reaches_all() {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        let c = board.register("c");
        a.broadcast(&[b.id().clone(), c.id().clone()], frame(9, b"all"))
            .unwrap();
        assert_eq!(b.recv().unwrap().frame.msg_type, 9);
        assert_eq!(c.recv().unwrap().frame.msg_type, 9);
    }

    #[test]
    fn try_recv_empty() {
        let board = Switchboard::new();
        let a = board.register("a");
        assert_eq!(a.try_recv().unwrap_err(), TransportError::Empty);
    }

    #[test]
    fn fifo_per_sender() {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        for i in 0..10u16 {
            a.send(b.id(), frame(i, b"seq")).unwrap();
        }
        for i in 0..10u16 {
            assert_eq!(b.recv().unwrap().frame.msg_type, i);
        }
    }

    #[test]
    fn drop_faults_lose_messages() {
        let board = Switchboard::with_faults(FaultConfig {
            drop_chance: 1.0,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        a.send(b.id(), frame(1, b"gone")).unwrap();
        assert_eq!(b.try_recv().unwrap_err(), TransportError::Empty);
        assert_eq!(board.fault_stats().dropped, 1);
    }

    #[test]
    fn corrupt_faults_caught_by_checksum() {
        let board = Switchboard::with_faults(FaultConfig {
            corrupt_chance: 1.0,
            seed: 3,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        a.send(b.id(), frame(1, b"precious data")).unwrap();
        match b.recv() {
            Err(TransportError::Wire(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        assert_eq!(board.fault_stats().corrupted, 1);
    }

    #[test]
    fn duplicate_faults_deliver_twice() {
        let board = Switchboard::with_faults(FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        a.send(b.id(), frame(1, b"twice")).unwrap();
        assert!(b.recv().is_ok());
        assert!(b.recv().is_ok());
        assert_eq!(b.try_recv().unwrap_err(), TransportError::Empty);
    }

    #[test]
    fn deterministic_fault_schedule() {
        let run = |seed| {
            let board = Switchboard::with_faults(FaultConfig {
                drop_chance: 0.5,
                seed,
                ..Default::default()
            });
            let a = board.register("a");
            let b = board.register("b");
            for _ in 0..100 {
                a.send(b.id(), frame(1, b"x")).unwrap();
            }
            board.fault_stats().dropped
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // overwhelmingly likely
    }

    #[test]
    fn cross_thread_delivery() {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        let handle = std::thread::spawn(move || {
            let env = b.recv().unwrap();
            env.frame.msg_type
        });
        a.send(&PartyId::new("b"), frame(42, b"cross-thread"))
            .unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn parties_listing() {
        let board = Switchboard::new();
        let _a = board.register("ts");
        let _b = board.register("dc-1");
        let _c = board.register("sk-1");
        assert_eq!(
            board.parties(),
            vec![
                PartyId::new("dc-1"),
                PartyId::new("sk-1"),
                PartyId::new("ts")
            ]
        );
        board.deregister(&PartyId::new("dc-1"));
        assert_eq!(board.parties().len(), 2);
    }
}
