//! # pm-net — deployment messaging for the measurement systems
//!
//! The original PrivCount and PSC deployments connect their parties
//! (tally server, share keepers / computation parties, data collectors)
//! over TLS/TCP. This crate reproduces that layer as an explicit,
//! inspectable substrate in the style of an event-driven network stack:
//!
//! * [`frame`] — a length-prefixed, type-tagged, checksummed wire format
//!   built directly on [`bytes`] (hand-written codecs, no serde on the
//!   wire);
//! * [`transport`] — the [`transport::Fabric`] trait and the in-memory
//!   [`transport::Switchboard`] backend: one mailbox per ordered
//!   `(from, to)` party link, so traffic on disjoint links never
//!   serializes behind a shared lock, plus per-link fault injection
//!   with smoltcp-style drop/duplicate/corrupt knobs (a single-lock
//!   fabric is kept as the regression baseline);
//! * [`wire`] — the socket-backed [`wire::WireFabric`]: the same frame
//!   codec length-prefixed onto real TCP loopback links, with
//!   deterministic latency/bandwidth shaping for WAN-like wall-clock
//!   measurements;
//! * [`party`] — an event-loop runner that drives protocol state
//!   machines to completion over any fabric, with a deterministic
//!   single-threaded scheduler (for tests) and a threaded runner (one
//!   OS thread per party, as a real deployment would run one process
//!   per party).
//!
//! Protocol crates (`privcount`, `psc`) define their message types as
//! [`frame::WireEncode`]/[`frame::WireDecode`] implementations and state
//! machines implementing [`party::Node`].
//!
//! # Fabric backends
//!
//! Everything above the transport — protocol nodes, round drivers, the
//! campaign plumbing — is generic over [`transport::Fabric`] and picks
//! a backend with [`transport::FabricChoice`]:
//!
//! | choice        | backend                | delivery                           |
//! |---------------|------------------------|------------------------------------|
//! | `PerLink`     | [`transport::Switchboard`] | in-process, per-link mailboxes |
//! | `SingleLock`  | [`transport::Switchboard`] | in-process, one global lock (regression baseline) |
//! | `Wire(shape)` | [`wire::WireFabric`]   | TCP loopback sockets, optionally shaped |
//!
//! The trait contract protocols may rely on, on **any** backend:
//!
//! * **Per-sender FIFO is the only ordering guarantee.** Frames from
//!   one sender to one recipient arrive in send order; the interleaving
//!   of different senders is a schedule artifact (token queue, OS
//!   scheduler, or TCP timing) and must never affect a transcript byte.
//! * Every submitted frame is counted in the fault/link statistics at
//!   the send site, so backends fed the same transcript report the
//!   identical shared `net.*` counters (the wire backend adds its own
//!   `net.wire.*` family; it never diverges the shared ones).
//! * Counters are published into the fabric's recorder exactly once,
//!   when the last handle drops.
//!
//! Under a lossless schedule the same round produces byte-identical
//! per-link transcripts on every backend — pinned by the per-link
//! transcript digests in [`transport::LinkStats`] and the cross-backend
//! equality tests.

pub mod frame;
pub mod party;
pub mod transport;
pub mod wire;

pub use frame::{Frame, WireDecode, WireEncode, WireError};
pub use party::{Node, Runner, Step};
pub use transport::{
    Endpoint, Fabric, FabricChoice, FaultConfig, PartyId, Switchboard, TransportError, WireShape,
};
pub use wire::WireFabric;

/// Convenience prelude.
pub mod prelude {
    pub use crate::frame::{Frame, WireDecode, WireEncode, WireError};
    pub use crate::party::{Node, Runner, Step};
    pub use crate::transport::{
        Endpoint, Fabric, FabricChoice, FaultConfig, PartyId, Switchboard, WireShape,
    };
    pub use crate::wire::WireFabric;
}
