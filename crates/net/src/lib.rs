//! # pm-net — deployment messaging for the measurement systems
//!
//! The original PrivCount and PSC deployments connect their parties
//! (tally server, share keepers / computation parties, data collectors)
//! over TLS/TCP. This crate reproduces that layer as an explicit,
//! inspectable substrate in the style of an event-driven network stack:
//!
//! * [`frame`] — a length-prefixed, type-tagged, checksummed wire format
//!   built directly on [`bytes`] (hand-written codecs, no serde on the
//!   wire);
//! * [`transport`] — the [`transport::Switchboard`]: an in-memory
//!   message fabric with one mailbox per ordered `(from, to)` party
//!   link, so traffic on disjoint links never serializes behind a
//!   shared lock, plus per-link fault injection with smoltcp-style
//!   drop/duplicate/corrupt knobs (a single-lock fabric is kept as the
//!   regression baseline);
//! * [`party`] — an event-loop runner that drives protocol state
//!   machines to completion, with a deterministic single-threaded
//!   scheduler (for tests) and a threaded runner (one OS thread per
//!   party, as a real deployment would run one process per party).
//!
//! Protocol crates (`privcount`, `psc`) define their message types as
//! [`frame::WireEncode`]/[`frame::WireDecode`] implementations and state
//! machines implementing [`party::Node`].

pub mod frame;
pub mod party;
pub mod transport;

pub use frame::{Frame, WireDecode, WireEncode, WireError};
pub use party::{Node, Runner, Step};
pub use transport::{Endpoint, FaultConfig, PartyId, Switchboard, TransportError};

/// Convenience prelude.
pub mod prelude {
    pub use crate::frame::{Frame, WireDecode, WireEncode, WireError};
    pub use crate::party::{Node, Runner, Step};
    pub use crate::transport::{Endpoint, FaultConfig, PartyId, Switchboard};
}
