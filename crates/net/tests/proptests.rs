//! Property tests for the wire format and transport.

use bytes::Bytes;
use pm_net::frame::{Frame, WireError};
use pm_net::transport::{FaultConfig, Switchboard};
use proptest::prelude::*;

proptest! {
    #[test]
    fn frame_roundtrip(msg_type in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let f = Frame::new(msg_type, Bytes::from(payload));
        let back = Frame::from_wire(f.to_wire()).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn single_bitflip_never_passes(
        msg_type in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip_byte_seed in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let f = Frame::new(msg_type, Bytes::from(payload));
        let mut wire = f.to_wire().to_vec();
        let idx = flip_byte_seed % wire.len();
        wire[idx] ^= 1 << flip_bit;
        // A flipped frame must never decode to the SAME frame: either it
        // errors, or (if the flip hit the type field and checksum
        // happened to still match — impossible with Fletcher over the
        // body) differs.
        match Frame::from_wire(Bytes::from(wire)) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed, f),
        }
    }

    #[test]
    fn truncation_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut_fraction in 0.0f64..1.0,
    ) {
        let f = Frame::new(1, Bytes::from(payload));
        let wire = f.to_wire();
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        if cut < wire.len() {
            prop_assert!(Frame::from_wire(wire.slice(..cut)).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes must be rejected gracefully.
        let _ = Frame::from_wire(Bytes::from(data));
    }

    #[test]
    fn switchboard_delivers_in_order(count in 1usize..50) {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        for i in 0..count {
            a.send(b.id(), Frame::new(i as u16, Bytes::new())).unwrap();
        }
        for i in 0..count {
            let env = b.recv().unwrap();
            prop_assert_eq!(env.frame.msg_type, i as u16);
        }
    }

    #[test]
    fn drop_rate_statistics(seed in any::<u64>()) {
        let board = Switchboard::with_faults(FaultConfig {
            drop_chance: 0.5,
            seed,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        let n = 200;
        for _ in 0..n {
            a.send(b.id(), Frame::new(0, Bytes::new())).unwrap();
        }
        let stats = board.fault_stats();
        prop_assert_eq!(stats.sent, n as u64);
        // Binomial(200, 0.5): dropping outside [60, 140] is ~5σ.
        prop_assert!((60..=140).contains(&(stats.dropped as usize)), "{}", stats.dropped);
        prop_assert_eq!(b.pending() as u64 + stats.dropped, n as u64);
    }
}

#[test]
fn decode_rejects_wrong_magic_without_panicking() {
    let mut wire = Frame::new(1, Bytes::from_static(b"x")).to_wire().to_vec();
    wire[0] = 0;
    assert_eq!(
        Frame::from_wire(Bytes::from(wire)).unwrap_err(),
        WireError::BadMagic
    );
}
