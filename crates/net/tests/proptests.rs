//! Property tests for the wire format, the transport, and the
//! socket-stream blob codec the wire fabric layers on top of both.

use bytes::Bytes;
use pm_net::frame::{Frame, WireError};
use pm_net::transport::{FaultConfig, Switchboard, TransportError};
use pm_net::wire::{encode_blob, StreamDecoder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn frame_roundtrip(msg_type in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let f = Frame::new(msg_type, Bytes::from(payload));
        let back = Frame::from_wire(f.to_wire()).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn single_bitflip_never_passes(
        msg_type in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip_byte_seed in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let f = Frame::new(msg_type, Bytes::from(payload));
        let mut wire = f.to_wire().to_vec();
        let idx = flip_byte_seed % wire.len();
        wire[idx] ^= 1 << flip_bit;
        // A flipped frame must never decode to the SAME frame: either it
        // errors, or (if the flip hit the type field and checksum
        // happened to still match — impossible with Fletcher over the
        // body) differs.
        match Frame::from_wire(Bytes::from(wire)) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed, f),
        }
    }

    #[test]
    fn truncation_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut_fraction in 0.0f64..1.0,
    ) {
        let f = Frame::new(1, Bytes::from(payload));
        let wire = f.to_wire();
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        if cut < wire.len() {
            prop_assert!(Frame::from_wire(wire.slice(..cut)).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes must be rejected gracefully.
        let _ = Frame::from_wire(Bytes::from(data));
    }

    #[test]
    fn switchboard_delivers_in_order(count in 1usize..50) {
        let board = Switchboard::new();
        let a = board.register("a");
        let b = board.register("b");
        for i in 0..count {
            a.send(b.id(), Frame::new(i as u16, Bytes::new())).unwrap();
        }
        for i in 0..count {
            let env = b.recv().unwrap();
            prop_assert_eq!(env.frame.msg_type, i as u16);
        }
    }

    #[test]
    fn drop_rate_statistics(seed in any::<u64>()) {
        let board = Switchboard::with_faults(FaultConfig {
            drop_chance: 0.5,
            seed,
            ..Default::default()
        });
        let a = board.register("a");
        let b = board.register("b");
        let n = 200;
        for _ in 0..n {
            a.send(b.id(), Frame::new(0, Bytes::new())).unwrap();
        }
        let stats = board.fault_stats();
        prop_assert_eq!(stats.sent, n as u64);
        // Binomial(200, 0.5): dropping outside [60, 140] is ~5σ.
        prop_assert!((60..=140).contains(&(stats.dropped as usize)), "{}", stats.dropped);
        prop_assert_eq!(b.pending() as u64 + stats.dropped, n as u64);
    }
}

proptest! {
    /// A TCP stream hands the reader arbitrary chunk boundaries; the
    /// decoder must reassemble the original blob sequence from ANY
    /// split of the byte stream — including byte-at-a-time delivery and
    /// chunks spanning several blobs.
    #[test]
    fn stream_decoder_survives_arbitrary_chunking(
        blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let mut stream = Vec::new();
        for blob in &blobs {
            stream.extend_from_slice(&encode_blob(blob));
        }
        // Turn the free-form cut seeds into sorted split points.
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        points.sort_unstable();
        points.dedup();
        points.push(stream.len());

        let mut dec = StreamDecoder::default();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut start = 0;
        for end in points {
            got.extend(dec.push(&stream[start..end]).unwrap());
            start = end;
        }
        dec.finish().unwrap();
        prop_assert_eq!(got, blobs);
    }

    /// Cutting the stream anywhere that is not a blob boundary leaves
    /// residue: `finish` must flag it as `WireError::Truncated` — and
    /// decoding the truncated stream must never panic.
    #[test]
    fn stream_decoder_flags_any_truncation(
        blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..5),
        cut_seed in any::<usize>(),
    ) {
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for blob in &blobs {
            stream.extend_from_slice(&encode_blob(blob));
            boundaries.push(stream.len());
        }
        let cut = cut_seed % stream.len();
        let mut dec = StreamDecoder::default();
        let _ = dec.push(&stream[..cut]).unwrap();
        if boundaries.contains(&cut) {
            prop_assert!(dec.finish().is_ok());
        } else {
            prop_assert!(matches!(
                dec.finish(),
                Err(TransportError::Wire(WireError::Truncated))
            ));
        }
    }

    /// Arbitrary garbage fed as a stream either decodes into some blob
    /// sequence or errors — it must never panic, and an oversized
    /// length prefix must be rejected before allocation.
    #[test]
    fn stream_decoder_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut dec = StreamDecoder::default();
        if dec.push(&data).is_ok() {
            let _ = dec.finish();
        }
    }
}

#[test]
fn decode_rejects_wrong_magic_without_panicking() {
    let mut wire = Frame::new(1, Bytes::from_static(b"x")).to_wire().to_vec();
    wire[0] = 0;
    assert_eq!(
        Frame::from_wire(Bytes::from(wire)).unwrap_err(),
        WireError::BadMagic
    );
}
