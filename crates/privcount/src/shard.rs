//! Per-shard counter accumulators with associative merge.
//!
//! The sharded pipeline folds each shard of a
//! [`torsim::stream::EventStream`] into its own plain `Vec<i64>` of
//! counter totals — no blinding, no noise — and merges shard
//! accumulators by elementwise addition. Addition is commutative and
//! associative, so the merged totals are bit-identical for every shard
//! count (the stream's shard-count invariance contract). Noise and
//! blinding are applied exactly once, when the merged totals are folded
//! into the DC's [`BlindedCounter`](pm_crypto::secret::BlindedCounter)
//! registers as a single batched update per counter.

use crate::counter::Schema;
use torsim::stream::EventStream;

/// One shard's counter totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCounters {
    /// Per-counter increments observed by this shard.
    pub counts: Vec<i64>,
}

impl ShardCounters {
    /// Zeroed accumulator for `n` counters.
    pub fn new(n: usize) -> ShardCounters {
        ShardCounters { counts: vec![0; n] }
    }

    /// Folds one event through the schema's mapper.
    pub fn ingest(&mut self, schema: &Schema, ev: &torsim::TorEvent) {
        (schema.mapper)(ev, &mut |idx, delta| {
            self.counts[idx] += delta;
        });
    }

    /// Associative, commutative merge: elementwise addition.
    pub fn merge(mut self, other: &ShardCounters) -> ShardCounters {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self
    }
}

/// Ingests a stream shard-parallel (one thread per shard) and returns
/// the merged per-counter totals.
pub fn ingest_stream(stream: EventStream, schema: &Schema) -> Vec<i64> {
    let n = schema.len();
    let parts = stream.fold_parallel(|_| ShardCounters::new(n), |acc, ev| acc.ingest(schema, &ev));
    parts
        .into_iter()
        .fold(ShardCounters::new(n), |acc, part| acc.merge(&part))
        .counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterSpec;
    use std::sync::Arc;
    use torsim::events::TorEvent;
    use torsim::ids::{IpAddr, RelayId};
    use torsim::stream::EventStream;

    fn test_schema() -> Schema {
        Schema::new(
            vec![
                CounterSpec::with_sigma("conns", 1.0),
                CounterSpec::with_sigma("bytes", 1.0),
            ],
            Arc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| match ev {
                TorEvent::EntryConnection { .. } => emit(0, 1),
                TorEvent::EntryBytes { bytes, .. } => emit(1, *bytes as i64),
                _ => {}
            }),
        )
    }

    fn events(n: u32) -> Vec<TorEvent> {
        (0..n)
            .flat_map(|i| {
                [
                    TorEvent::EntryConnection {
                        relay: RelayId(0),
                        client_ip: IpAddr(i),
                    },
                    TorEvent::EntryBytes {
                        relay: RelayId(0),
                        client_ip: IpAddr(i),
                        bytes: 10,
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn merge_is_elementwise() {
        let a = ShardCounters {
            counts: vec![1, 10],
        };
        let b = ShardCounters {
            counts: vec![2, 20],
        };
        assert_eq!(a.merge(&b).counts, vec![3, 30]);
    }

    #[test]
    fn ingest_stream_matches_direct_fold_for_any_shard_count() {
        let schema = test_schema();
        for k in [1, 2, 4, 16] {
            let stream = EventStream::from_events(events(500), k);
            let totals = ingest_stream(stream, &schema);
            assert_eq!(totals, vec![500, 5000], "k={k}");
        }
    }
}
