//! Counter schemas: what a round measures and how events map to
//! increments.

use pm_dp::mechanism::gaussian_sigma;
use torsim::TorEvent;

/// One counter (or histogram bin) in a round's schema.
#[derive(Clone, Debug)]
pub struct CounterSpec {
    /// Display name (e.g. `"exit.streams.initial"`).
    pub name: String,
    /// Gaussian noise σ this counter must carry (calibrated from the
    /// action bounds and the round's ε share).
    pub sigma: f64,
}

impl CounterSpec {
    /// Builds a spec with σ calibrated for `(eps, delta)` at
    /// `sensitivity`.
    pub fn calibrated(
        name: impl Into<String>,
        sensitivity: f64,
        eps: f64,
        delta: f64,
    ) -> CounterSpec {
        CounterSpec {
            name: name.into(),
            sigma: gaussian_sigma(sensitivity, eps, delta),
        }
    }

    /// Builds a spec with an explicit σ.
    pub fn with_sigma(name: impl Into<String>, sigma: f64) -> CounterSpec {
        CounterSpec {
            name: name.into(),
            sigma,
        }
    }
}

/// Maps an observed event to counter increments.
///
/// The mapper is installed at DC construction (it holds references to
/// the site list / geo databases and is not wire-serializable); the TS
/// only ever sees counter names. It is shared (`Arc`) across the DCs of
/// a round.
pub type EventMapper = std::sync::Arc<dyn Fn(&TorEvent, &mut dyn FnMut(usize, i64)) + Send + Sync>;

/// A round's measurement schema: counters plus the event mapping.
pub struct Schema {
    /// The counters.
    pub counters: Vec<CounterSpec>,
    /// Event-to-increment mapping.
    pub mapper: EventMapper,
}

impl Schema {
    /// Builds a schema.
    pub fn new(counters: Vec<CounterSpec>, mapper: EventMapper) -> Schema {
        assert!(!counters.is_empty(), "schema needs at least one counter");
        Schema { counters, mapper }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if the schema has no counters (cannot occur).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Index of a counter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.counters.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torsim::prelude::*;

    #[test]
    fn calibrated_sigma_positive_and_scales() {
        let a = CounterSpec::calibrated("a", 20.0, 0.3, 1e-11);
        let b = CounterSpec::calibrated("b", 40.0, 0.3, 1e-11);
        assert!(a.sigma > 0.0);
        assert!((b.sigma / a.sigma - 2.0).abs() < 1e-9);
    }

    #[test]
    fn schema_lookup() {
        let schema = Schema::new(
            vec![
                CounterSpec::with_sigma("x", 1.0),
                CounterSpec::with_sigma("y", 2.0),
            ],
            std::sync::Arc::new(|_ev: &TorEvent, _emit: &mut dyn FnMut(usize, i64)| {}),
        );
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.index_of("y"), Some(1));
        assert_eq!(schema.index_of("z"), None);
    }

    #[test]
    fn mapper_dispatch() {
        let schema = Schema::new(
            vec![CounterSpec::with_sigma("conn", 1.0)],
            std::sync::Arc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
                if matches!(ev, TorEvent::EntryConnection { .. }) {
                    emit(0, 1);
                }
            }),
        );
        let mut hits = Vec::new();
        let ev = TorEvent::EntryConnection {
            relay: RelayId(0),
            client_ip: IpAddr(1),
        };
        (schema.mapper)(&ev, &mut |i, v| hits.push((i, v)));
        assert_eq!(hits, vec![(0, 1)]);
    }
}
