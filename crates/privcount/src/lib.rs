//! # privcount — the PrivCount distributed measurement system
//!
//! A faithful Rust implementation of PrivCount (Jansen & Johnson,
//! CCS 2016) as enhanced by the paper: a Tally Server (TS), one or more
//! Share Keepers (SKs), and one Data Collector (DC) per instrumented
//! relay jointly publish (ε, δ)-differentially private counters of Tor
//! events.
//!
//! Protocol round (one "collection period"):
//!
//! 1. each SK publishes a hybrid-encryption public key to the TS;
//! 2. the TS configures every DC with the counter schema and SK keys;
//! 3. each DC initializes every counter to `noise + Σ_k share_k`
//!    (mod 2⁶⁴), hybrid-encrypts each SK's shares to that SK, and ships
//!    them via the TS (DCs need no SK connectivity, as in the real
//!    deployment);
//! 4. during collection the DC increments counters from observed Tor
//!    events (here: a generator supplied by the experiment);
//! 5. at round end DCs publish blinded registers, SKs publish share
//!    sums, and the TS's addition telescopes the blinding away, leaving
//!    `true count + noise`.
//!
//! No strict subset of {DCs} ∪ {SKs} \ {one honest SK} learns anything:
//! each missing share is a one-time pad (see `pm_crypto::secret`).
//!
//! [`queries`] defines the paper's concrete counter schemas (exit
//! streams, domain histograms, per-country client counters, HSDir and
//! rendezvous statistics). [`adversary`] injects seed-deterministic
//! Byzantine behaviour (malformed or inflated registers, dying share
//! keepers, corrupted share payloads, exhausted noise budgets) so the
//! study harness can assert every failure mode is detected instead of
//! panicking a campaign.

pub mod adversary;
pub mod counter;
pub mod dc;
pub mod messages;
pub mod queries;
pub mod round;
pub mod shard;
pub mod sk;
pub mod ts;

pub use counter::{CounterSpec, EventMapper, Schema};
pub use round::{run_round, run_round_days, run_round_streams, RoundConfig, RoundResult};

/// Convenience prelude.
pub mod prelude {
    pub use crate::counter::{CounterSpec, EventMapper, Schema};
    pub use crate::queries;
    pub use crate::round::{run_round, run_round_streams, RoundConfig, RoundResult};
}
