//! Round driver: wires TS, SKs, and DCs over a [`pm_net::Fabric`]
//! backend, runs the protocol to completion, and packages results with
//! confidence intervals.

use crate::adversary::Attack;
use crate::counter::{CounterSpec, EventMapper};
use crate::dc::{DcNode, DcSource, EventGenerator};
use crate::sk::SkNode;
use crate::ts::{ResultSlot, TsNode};
use parking_lot::Mutex;
use pm_net::party::{NodeError, Runner};
use pm_net::transport::{FabricChoice, FaultConfig, PartyId};
use pm_stats::ci::Estimate;
use std::sync::Arc;

/// How DCs split the per-counter noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseAllocation {
    /// Every DC adds `N(0, σ²/num_dcs)`; the published total carries
    /// exactly `N(0, σ²)` (PrivCount's equal allocation).
    Equal,
    /// Only the first DC adds `N(0, σ²)` (used by the ablation bench;
    /// weaker against DC compromise, same output distribution).
    FirstDcOnly,
    /// No noise at all (ground-truth extraction in tests ONLY — never
    /// differentially private).
    None,
}

/// A PrivCount round configuration.
pub struct RoundConfig {
    /// The counters to collect.
    pub counters: Vec<CounterSpec>,
    /// The shared event-to-counter mapping.
    pub mapper: EventMapper,
    /// Number of Share Keepers (the paper deploys 3).
    pub num_sks: usize,
    /// Noise allocation across DCs.
    pub noise: NoiseAllocation,
    /// Base RNG seed (per-party seeds derive from it).
    pub seed: u64,
    /// Run each party on its own OS thread instead of the deterministic
    /// single-threaded scheduler.
    pub threaded: bool,
    /// Optional fault injection on the fabric.
    pub faults: FaultConfig,
    /// Which [`pm_net::Fabric`] backend carries the round: per-link
    /// mailboxes (default), the single-lock baseline, or real loopback
    /// sockets. The wire backend forces threaded execution and rejects
    /// active adversaries (they need the deterministic scheduler).
    pub fabric: FabricChoice,
    /// Optional Byzantine behaviour injected into one party
    /// ([`crate::adversary`]). Forces the deterministic scheduler when
    /// active, so a dead keeper deadlocks loudly instead of hanging
    /// the threaded runner.
    pub adversary: crate::adversary::Attack,
    /// Observability handle threaded to the switchboard: deterministic
    /// counters (`privcount.rounds`, `net.link.*`) plus profiling spans
    /// when built with profiling enabled. Defaults to a detached
    /// recorder.
    pub recorder: pm_obs::Recorder,
}

/// The outcome of a round.
#[derive(Clone, Debug)]
pub struct RoundResult {
    /// Counter specifications (for names and σ).
    pub counters: Vec<CounterSpec>,
    /// Noisy totals, one per counter.
    pub totals: Vec<i64>,
}

impl RoundResult {
    /// The noisy total for a counter by name.
    pub fn total(&self, name: &str) -> i64 {
        let idx = self
            .counters
            .iter()
            .position(|c| c.name == name)
            // lint:allow(panic) counter names are the caller's own schema; a miss is a caller bug
            .unwrap_or_else(|| panic!("no counter named {name}"));
        self.totals[idx]
    }

    /// The estimate (with 95% CI from the known σ) for a counter.
    pub fn estimate(&self, name: &str) -> Estimate {
        let idx = self
            .counters
            .iter()
            .position(|c| c.name == name)
            // lint:allow(panic) counter names are the caller's own schema; a miss is a caller bug
            .unwrap_or_else(|| panic!("no counter named {name}"));
        Estimate::gaussian95(self.totals[idx] as f64, self.counters[idx].sigma)
    }

    /// All (name, estimate) pairs.
    pub fn estimates(&self) -> Vec<(String, Estimate)> {
        self.counters
            .iter()
            .zip(&self.totals)
            .map(|(c, t)| (c.name.clone(), Estimate::gaussian95(*t as f64, c.sigma)))
            .collect()
    }
}

/// Runs a full PrivCount round: one DC per entry of `dc_generators`.
pub fn run_round(
    cfg: RoundConfig,
    dc_generators: Vec<EventGenerator>,
) -> Result<RoundResult, NodeError> {
    run_round_sources(
        cfg,
        dc_generators.into_iter().map(DcSource::Generator).collect(),
    )
}

/// Runs a full PrivCount round with sharded streaming ingestion: one DC
/// per stream, each folding its shards in parallel (see
/// [`crate::shard`]).
pub fn run_round_streams(
    cfg: RoundConfig,
    dc_streams: Vec<torsim::stream::EventStream>,
) -> Result<RoundResult, NodeError> {
    run_round_sources(cfg, dc_streams.into_iter().map(DcSource::Stream).collect())
}

/// Runs one PrivCount round per day of a campaign window (`pm-study`):
/// `days[d]` holds day `d`'s per-DC streams, and day `d`'s round seeds
/// derive from the base config as `derive_seed(seed, "privcount/day{d}")`
/// (the label is namespaced so it can never alias the campaign layer's
/// own `"day{d}"` deployment-seed stream), so the
/// series is a pure function of `(config, calendar)` — the noise drawn
/// on day `d` cannot depend on which days ran before it (or
/// concurrently with it, under the parallel campaign executor).
/// Returns one result per day, in calendar order.
pub fn run_round_days(
    cfg: RoundConfig,
    days: Vec<Vec<torsim::stream::EventStream>>,
) -> Result<Vec<RoundResult>, NodeError> {
    assert!(!days.is_empty(), "need at least one day");
    days.into_iter()
        .enumerate()
        .map(|(d, streams)| {
            run_round_streams(
                RoundConfig {
                    counters: cfg.counters.clone(),
                    mapper: cfg.mapper.clone(),
                    num_sks: cfg.num_sks,
                    noise: cfg.noise,
                    seed: pm_stats::sampling::derive_seed(cfg.seed, &format!("privcount/day{d}")),
                    threaded: cfg.threaded,
                    faults: cfg.faults,
                    fabric: cfg.fabric,
                    adversary: cfg.adversary,
                    recorder: cfg.recorder.clone(),
                },
                streams,
            )
        })
        .collect()
}

/// Runs a full PrivCount round over arbitrary DC sources.
pub fn run_round_sources(
    cfg: RoundConfig,
    dc_sources: Vec<DcSource>,
) -> Result<RoundResult, NodeError> {
    assert!(!dc_sources.is_empty(), "need at least one DC");
    assert!(cfg.num_sks >= 1, "need at least one SK");
    cfg.recorder.incr("privcount.rounds");
    let mut round_span = cfg.recorder.span("round.privcount", "round");
    round_span.note("dcs", dc_sources.len());
    round_span.note("sks", cfg.num_sks);
    let num_dcs = dc_sources.len();
    if cfg.fabric.is_wire() && cfg.adversary.is_active() {
        return Err(NodeError::Protocol(
            "adversarial scenarios need the deterministic scheduler, which the \
             wire fabric cannot provide"
                .into(),
        ));
    }
    let board = cfg.fabric.build_obs(cfg.faults, cfg.recorder.clone());
    let mut runner = Runner::over(board);

    let ts_id = PartyId::new("ts");
    let dc_names: Vec<PartyId> = (0..num_dcs)
        .map(|i| PartyId::new(format!("dc-{i}")))
        .collect();
    let sk_names: Vec<PartyId> = (0..cfg.num_sks)
        .map(|i| PartyId::new(format!("sk-{i}")))
        .collect();

    let slot: ResultSlot = Arc::new(Mutex::new(None));
    runner.add(
        ts_id.clone(),
        Box::new(TsNode::new(
            cfg.counters.clone(),
            dc_names.clone(),
            sk_names.clone(),
            slot.clone(),
        )),
    );
    for (i, sk) in sk_names.iter().enumerate() {
        let mut node = SkNode::new(ts_id.clone(), num_dcs, cfg.seed ^ (0x5100 + i as u64));
        if let Attack::SkDeath { sk, after_messages } = cfg.adversary {
            if sk == i {
                node = node.dying_after(after_messages);
            }
        }
        runner.add(sk.clone(), Box::new(node));
    }
    for (i, (dc, source)) in dc_names.iter().zip(dc_sources).enumerate() {
        let noise_scale = match cfg.noise {
            NoiseAllocation::Equal => 1.0 / (num_dcs as f64).sqrt(),
            NoiseAllocation::FirstDcOnly => {
                if i == 0 {
                    1.0
                } else {
                    0.0
                }
            }
            NoiseAllocation::None => 0.0,
        };
        let schema = crate::counter::Schema::new(cfg.counters.clone(), cfg.mapper.clone());
        let mut node = DcNode::with_source(
            ts_id.clone(),
            schema,
            source,
            noise_scale,
            cfg.seed ^ (0xDC00 + i as u64),
        );
        node = match cfg.adversary {
            Attack::MalformedRegisters { dc } if dc == i => node.malformed(),
            Attack::InflatedCounts { dc, factor } if dc == i => node.inflating(factor),
            Attack::BadSharePayload { dc } if dc == i => node.corrupting_shares(),
            Attack::NoiseExhaustion { dc, budget } if dc == i => node.with_noise_budget(budget),
            _ => node,
        };
        runner.add(dc.clone(), Box::new(node));
    }

    // Attacks require the deterministic scheduler's deadlock detector:
    // a dead keeper hangs the threaded runner forever. The wire fabric
    // conversely has no deterministic scheduler, so it always runs one
    // thread per party.
    let threaded = cfg.threaded || cfg.fabric.is_wire();
    if threaded && !cfg.adversary.is_active() {
        runner.run_threaded()?;
    } else {
        runner.run_deterministic()?;
    }
    let totals = slot
        .lock()
        .take()
        .ok_or_else(|| NodeError::Protocol("TS produced no result".into()))?;
    Ok(RoundResult {
        counters: cfg.counters,
        totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use torsim::events::TorEvent;
    use torsim::ids::{IpAddr, RelayId};

    fn conn_event(ip: u32) -> TorEvent {
        TorEvent::EntryConnection {
            relay: RelayId(0),
            client_ip: IpAddr(ip),
        }
    }

    fn counting_config(noise: NoiseAllocation, sigma: f64, threaded: bool) -> RoundConfig {
        RoundConfig {
            counters: vec![CounterSpec::with_sigma("connections", sigma)],
            mapper: StdArc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
                if matches!(ev, TorEvent::EntryConnection { .. }) {
                    emit(0, 1);
                }
            }),
            num_sks: 3,
            noise,
            seed: 7,
            threaded,
            faults: FaultConfig::none(),
            fabric: FabricChoice::default(),
            adversary: Attack::None,
            recorder: pm_obs::Recorder::new(),
        }
    }

    fn generators(counts: &[u64]) -> Vec<EventGenerator> {
        counts
            .iter()
            .map(|&n| {
                let g: EventGenerator = Box::new(move |sink| {
                    for i in 0..n {
                        sink(conn_event(i as u32));
                    }
                });
                g
            })
            .collect()
    }

    #[test]
    fn noiseless_round_is_exact() {
        let result = run_round(
            counting_config(NoiseAllocation::None, 100.0, false),
            generators(&[100, 200, 300]),
        )
        .unwrap();
        assert_eq!(result.total("connections"), 600);
    }

    #[test]
    fn noisy_round_is_close_and_noisy() {
        let result = run_round(
            counting_config(NoiseAllocation::Equal, 50.0, false),
            generators(&[10_000, 20_000]),
        )
        .unwrap();
        let total = result.total("connections");
        assert_ne!(total, 30_000, "noise must perturb the exact count");
        assert!((total - 30_000).abs() < 300, "total {total} too far (σ=50)");
        let est = result.estimate("connections");
        assert!(est.ci.contains(30_000.0));
    }

    #[test]
    fn threaded_matches_protocol() {
        let result = run_round(
            counting_config(NoiseAllocation::None, 1.0, true),
            generators(&[5, 7, 11, 13]),
        )
        .unwrap();
        assert_eq!(result.total("connections"), 36);
    }

    #[test]
    fn first_dc_only_noise() {
        let result = run_round(
            counting_config(NoiseAllocation::FirstDcOnly, 25.0, false),
            generators(&[1000, 1000]),
        )
        .unwrap();
        let total = result.total("connections");
        assert!((total - 2000).abs() < 150, "{total}");
    }

    #[test]
    fn multi_counter_round() {
        let cfg = RoundConfig {
            counters: vec![
                CounterSpec::with_sigma("connections", 0.0),
                CounterSpec::with_sigma("bytes", 0.0),
            ],
            mapper: StdArc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| match ev {
                TorEvent::EntryConnection { .. } => emit(0, 1),
                TorEvent::EntryBytes { bytes, .. } => emit(1, *bytes as i64),
                _ => {}
            }),
            num_sks: 2,
            noise: NoiseAllocation::None,
            seed: 9,
            threaded: false,
            faults: FaultConfig::none(),
            fabric: FabricChoice::default(),
            adversary: Attack::None,
            recorder: pm_obs::Recorder::new(),
        };
        let gens: Vec<EventGenerator> = vec![Box::new(|sink| {
            sink(conn_event(1));
            sink(TorEvent::EntryBytes {
                relay: RelayId(0),
                client_ip: IpAddr(1),
                bytes: 4096,
            });
            sink(conn_event(2));
        })];
        let result = run_round(cfg, gens).unwrap();
        assert_eq!(result.total("connections"), 2);
        assert_eq!(result.total("bytes"), 4096);
    }

    #[test]
    fn equal_noise_variance_totals_sigma() {
        // Run many noiseless-count rounds and check the spread of the
        // published totals matches the configured σ.
        let mut totals = Vec::new();
        for seed in 0..60u64 {
            let mut cfg = counting_config(NoiseAllocation::Equal, 40.0, false);
            cfg.seed = seed;
            let r = run_round(cfg, generators(&[500, 500, 500])).unwrap();
            totals.push(r.total("connections") as f64 - 1500.0);
        }
        let var: f64 = totals.iter().map(|x| x * x).sum::<f64>() / totals.len() as f64;
        let sd = var.sqrt();
        assert!((sd - 40.0).abs() < 12.0, "sd {sd}");
    }
}
