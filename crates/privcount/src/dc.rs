//! The Data Collector node: one per instrumented relay.

use crate::counter::Schema;
use crate::messages::{self, tag};
use pm_crypto::elgamal::{hybrid_encrypt, PublicKey};
use pm_crypto::group::GroupParams;
use pm_crypto::secret::BlindedCounter;
use pm_dp::mechanism::sample_gaussian;
use pm_net::party::{Node, NodeError, Step};
use pm_net::transport::{Endpoint, Envelope, PartyId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use torsim::TorEvent;

/// The event generator a DC runs during its collection period: it calls
/// the provided sink once per observed event.
pub type EventGenerator = Box<dyn FnOnce(&mut dyn FnMut(TorEvent)) + Send>;

/// What a DC ingests during its collection period.
pub enum DcSource {
    /// A sequential generator (the classic single-pass path).
    Generator(EventGenerator),
    /// A sharded stream, ingested shard-parallel with per-shard
    /// accumulators and a single batched register update at merge (see
    /// [`crate::shard`]).
    Stream(torsim::stream::EventStream),
}

/// A Data Collector.
pub struct DcNode {
    ts: PartyId,
    schema: Schema,
    source: Option<DcSource>,
    gp: GroupParams,
    /// Noise σ multiplier for this DC (1/√num_dcs under equal
    /// allocation; 1.0 or 0.0 under first-DC-only).
    noise_scale: f64,
    registers: Vec<BlindedCounter>,
    rng: StdRng,
}

impl DcNode {
    /// Creates a DC bound to a tally server, with its local schema,
    /// event generator, and noise share.
    pub fn new(
        ts: PartyId,
        schema: Schema,
        generator: EventGenerator,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode::with_source(
            ts,
            schema,
            DcSource::Generator(generator),
            noise_scale,
            seed,
        )
    }

    /// Creates a DC that ingests a sharded event stream.
    pub fn streaming(
        ts: PartyId,
        schema: Schema,
        stream: torsim::stream::EventStream,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode::with_source(ts, schema, DcSource::Stream(stream), noise_scale, seed)
    }

    /// Creates a DC over any [`DcSource`].
    pub fn with_source(
        ts: PartyId,
        schema: Schema,
        source: DcSource,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode {
            ts,
            schema,
            source: Some(source),
            gp: GroupParams::default_params(),
            noise_scale,
            registers: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Convenience: a DC whose "collection period" replays a fixed
    /// event list (used by tests).
    pub fn with_events(
        ts: PartyId,
        schema: Schema,
        events: Vec<TorEvent>,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode::new(
            ts,
            schema,
            Box::new(move |sink| {
                for ev in events {
                    sink(ev);
                }
            }),
            noise_scale,
            seed,
        )
    }

    fn on_configure(&mut self, ep: &Endpoint, cfg: messages::Configure) -> Result<(), NodeError> {
        // Sanity: counter alignment with our local schema.
        let ours: Vec<&String> = self.schema.counters.iter().map(|c| &c.name).collect();
        if cfg.counter_names.len() != ours.len()
            || cfg.counter_names.iter().zip(&ours).any(|(a, b)| &a != b)
        {
            return Err(NodeError::Protocol(format!(
                "counter schema mismatch at {}",
                ep.id()
            )));
        }
        let num_sks = cfg.sk_keys.len();
        if num_sks == 0 {
            return Err(NodeError::Protocol("no share keepers configured".into()));
        }
        // Initialize each register with this DC's noise contribution and
        // fresh blinding shares.
        let mut per_sk_shares: Vec<Vec<u64>> = vec![Vec::with_capacity(ours.len()); num_sks];
        self.registers.clear();
        for spec in &self.schema.counters {
            let noise =
                sample_gaussian(spec.sigma * self.noise_scale, &mut self.rng).round() as i64;
            let (reg, shares) = BlindedCounter::blind(noise, num_sks, &mut self.rng);
            self.registers.push(reg);
            for (k, s) in shares.into_iter().enumerate() {
                per_sk_shares[k].push(s.0);
            }
        }
        // Encrypt each SK's share vector to that SK and route via TS.
        for (k, (sk_name, sk_key)) in cfg.sk_keys.iter().enumerate() {
            let mut plain = Vec::with_capacity(per_sk_shares[k].len() * 8);
            for v in &per_sk_shares[k] {
                plain.extend_from_slice(&v.to_be_bytes());
            }
            let ct = hybrid_encrypt(&self.gp, &PublicKey(*sk_key), &plain, &mut self.rng);
            let msg = messages::EncryptedShares {
                sk_name: sk_name.clone(),
                dc_name: ep.id().as_str().to_string(),
                kem: ct.kem,
                payload: ct.payload,
            };
            ep.send(&self.ts, messages::frame_of(tag::SHARES, &msg))?;
        }
        Ok(())
    }

    fn on_start(&mut self, ep: &Endpoint) -> Result<(), NodeError> {
        let source = self
            .source
            .take()
            .ok_or_else(|| NodeError::Protocol("collection started twice".into()))?;
        // Run the collection period: every observed event maps to
        // counter increments.
        match source {
            DcSource::Generator(generator) => {
                let mapper = self.schema.mapper.clone();
                let registers = &mut self.registers;
                let mut sink = |ev: TorEvent| {
                    mapper(&ev, &mut |idx, delta| {
                        registers[idx].increment(delta);
                    });
                };
                generator(&mut sink);
            }
            DcSource::Stream(stream) => {
                // Shard-parallel fold, then one batched update per
                // counter. The registers already carry this DC's noise
                // and blinding from Configure; the merge applies the
                // observed totals exactly once.
                let totals = crate::shard::ingest_stream(stream, &self.schema);
                for (reg, total) in self.registers.iter_mut().zip(totals) {
                    reg.increment(total);
                }
            }
        }
        // Publish the blinded registers.
        let msg = messages::Registers {
            values: self.registers.iter().map(|r| r.publish()).collect(),
        };
        ep.send(&self.ts, messages::frame_of(tag::DC_RESULT, &msg))?;
        Ok(())
    }
}

impl Node for DcNode {
    fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
        Ok(Step::Continue) // wait for Configure
    }

    fn on_message(&mut self, ep: &Endpoint, env: Envelope) -> Result<Step, NodeError> {
        match env.frame.msg_type {
            tag::CONFIGURE => {
                let cfg: messages::Configure = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad configure: {e}")))?;
                self.on_configure(ep, cfg)?;
                Ok(Step::Continue)
            }
            tag::START => {
                self.on_start(ep)?;
                Ok(Step::Done)
            }
            other => Err(NodeError::Protocol(format!(
                "DC received unexpected message type {other}"
            ))),
        }
    }

    fn role(&self) -> &'static str {
        "privcount-dc"
    }
}
