//! The Data Collector node: one per instrumented relay.

use crate::counter::Schema;
use crate::messages::{self, tag};
use pm_crypto::elgamal::{hybrid_encrypt, PublicKey};
use pm_crypto::group::GroupParams;
use pm_crypto::secret::BlindedCounter;
use pm_dp::mechanism::sample_gaussian;
use pm_net::party::{Node, NodeError, Step};
use pm_net::transport::{Endpoint, Envelope, PartyId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use torsim::TorEvent;

/// The event generator a DC runs during its collection period: it calls
/// the provided sink once per observed event.
pub type EventGenerator = Box<dyn FnOnce(&mut dyn FnMut(TorEvent)) + Send>;

/// What a DC ingests during its collection period.
pub enum DcSource {
    /// A sequential generator (the classic single-pass path).
    Generator(EventGenerator),
    /// A sharded stream, ingested shard-parallel with per-shard
    /// accumulators and a single batched register update at merge (see
    /// [`crate::shard`]).
    Stream(torsim::stream::EventStream),
}

/// A Data Collector.
pub struct DcNode {
    ts: PartyId,
    schema: Schema,
    source: Option<DcSource>,
    gp: GroupParams,
    /// Noise σ multiplier for this DC (1/√num_dcs under equal
    /// allocation; 1.0 or 0.0 under first-DC-only).
    noise_scale: f64,
    registers: Vec<BlindedCounter>,
    rng: StdRng,
    /// Byzantine knob: publish one register too few.
    malformed: bool,
    /// Byzantine knob: multiply every observed increment.
    inflate_factor: Option<i64>,
    /// Byzantine knob: truncate the encrypted share payload sent to
    /// the first SK.
    corrupt_shares: bool,
    /// Byzantine knob: the DC can afford only this many per-counter
    /// noise draws; fewer than the schema requires means it refuses to
    /// configure rather than run under-noised.
    noise_budget: Option<u32>,
}

impl DcNode {
    /// Creates a DC bound to a tally server, with its local schema,
    /// event generator, and noise share.
    pub fn new(
        ts: PartyId,
        schema: Schema,
        generator: EventGenerator,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode::with_source(
            ts,
            schema,
            DcSource::Generator(generator),
            noise_scale,
            seed,
        )
    }

    /// Creates a DC that ingests a sharded event stream.
    pub fn streaming(
        ts: PartyId,
        schema: Schema,
        stream: torsim::stream::EventStream,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode::with_source(ts, schema, DcSource::Stream(stream), noise_scale, seed)
    }

    /// Creates a DC over any [`DcSource`].
    pub fn with_source(
        ts: PartyId,
        schema: Schema,
        source: DcSource,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode {
            ts,
            schema,
            source: Some(source),
            gp: GroupParams::default_params(),
            noise_scale,
            registers: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            malformed: false,
            inflate_factor: None,
            corrupt_shares: false,
            noise_budget: None,
        }
    }

    /// Byzantine variant
    /// ([`crate::adversary::Attack::MalformedRegisters`]): the DC
    /// publishes one register too few.
    pub fn malformed(mut self) -> DcNode {
        self.malformed = true;
        self
    }

    /// Byzantine variant ([`crate::adversary::Attack::InflatedCounts`]):
    /// the DC multiplies every observed increment by `factor`.
    pub fn inflating(mut self, factor: i64) -> DcNode {
        self.inflate_factor = Some(factor);
        self
    }

    /// Byzantine variant
    /// ([`crate::adversary::Attack::BadSharePayload`]): the DC
    /// truncates the encrypted blinding-share payload it sends to the
    /// first SK.
    pub fn corrupting_shares(mut self) -> DcNode {
        self.corrupt_shares = true;
        self
    }

    /// Failure variant ([`crate::adversary::Attack::NoiseExhaustion`]):
    /// the DC can afford only `budget` noise draws.
    pub fn with_noise_budget(mut self, budget: u32) -> DcNode {
        self.noise_budget = Some(budget);
        self
    }

    /// Convenience: a DC whose "collection period" replays a fixed
    /// event list (used by tests).
    pub fn with_events(
        ts: PartyId,
        schema: Schema,
        events: Vec<TorEvent>,
        noise_scale: f64,
        seed: u64,
    ) -> DcNode {
        DcNode::new(
            ts,
            schema,
            Box::new(move |sink| {
                for ev in events {
                    sink(ev);
                }
            }),
            noise_scale,
            seed,
        )
    }

    fn on_configure(&mut self, ep: &Endpoint, cfg: messages::Configure) -> Result<(), NodeError> {
        // Sanity: counter alignment with our local schema.
        let ours: Vec<&String> = self.schema.counters.iter().map(|c| &c.name).collect();
        if cfg.counter_names.len() != ours.len()
            || cfg.counter_names.iter().zip(&ours).any(|(a, b)| &a != b)
        {
            return Err(NodeError::Protocol(format!(
                "counter schema mismatch at {}",
                ep.id()
            )));
        }
        let num_sks = cfg.sk_keys.len();
        if num_sks == 0 {
            return Err(NodeError::Protocol("no share keepers configured".into()));
        }
        // An exhausted DC cannot noise every counter; running anyway
        // would silently weaken the round's differential privacy, so
        // it refuses the round loudly instead (the campaign layer
        // turns this into an aborted round, not a panic).
        if let Some(budget) = self.noise_budget {
            let needed = self.schema.counters.len();
            if (budget as usize) < needed {
                return Err(NodeError::Protocol(format!(
                    "noise budget exhausted: {budget} of {needed} counter draws available"
                )));
            }
        }
        // Initialize each register with this DC's noise contribution and
        // fresh blinding shares.
        let mut per_sk_shares: Vec<Vec<u64>> = vec![Vec::with_capacity(ours.len()); num_sks];
        self.registers.clear();
        for spec in &self.schema.counters {
            let noise =
                sample_gaussian(spec.sigma * self.noise_scale, &mut self.rng).round() as i64;
            let (reg, shares) = BlindedCounter::blind(noise, num_sks, &mut self.rng);
            self.registers.push(reg);
            for (k, s) in shares.into_iter().enumerate() {
                per_sk_shares[k].push(s.0);
            }
        }
        // Encrypt each SK's share vector to that SK and route via TS.
        for (k, (sk_name, sk_key)) in cfg.sk_keys.iter().enumerate() {
            let mut plain = Vec::with_capacity(per_sk_shares[k].len() * 8);
            for v in &per_sk_shares[k] {
                plain.extend_from_slice(&v.to_be_bytes());
            }
            let ct = hybrid_encrypt(&self.gp, &PublicKey(*sk_key), &plain, &mut self.rng);
            // A corrupting DC truncates the first SK's ciphertext; the
            // stream cipher decrypts the stump to a wrong-length share
            // vector, which the SK rejects naming this DC.
            let mut payload = ct.payload;
            if self.corrupt_shares && k == 0 {
                payload.truncate(payload.len().saturating_sub(3));
            }
            let msg = messages::EncryptedShares {
                sk_name: sk_name.clone(),
                dc_name: ep.id().as_str().to_string(),
                kem: ct.kem,
                payload,
            };
            ep.send(&self.ts, messages::frame_of(tag::SHARES, &msg))?;
        }
        Ok(())
    }

    fn on_start(&mut self, ep: &Endpoint) -> Result<(), NodeError> {
        let source = self
            .source
            .take()
            .ok_or_else(|| NodeError::Protocol("collection started twice".into()))?;
        // Run the collection period: every observed event maps to
        // counter increments.
        // An inflating DC scales every observed increment — blinding
        // makes the skew invisible at the protocol layer, so detection
        // is statistical, at the campaign layer.
        let factor = self.inflate_factor.unwrap_or(1);
        match source {
            DcSource::Generator(generator) => {
                let mapper = self.schema.mapper.clone();
                let registers = &mut self.registers;
                let mut sink = |ev: TorEvent| {
                    mapper(&ev, &mut |idx, delta| {
                        registers[idx].increment(delta * factor);
                    });
                };
                generator(&mut sink);
            }
            DcSource::Stream(stream) => {
                // Shard-parallel fold, then one batched update per
                // counter. The registers already carry this DC's noise
                // and blinding from Configure; the merge applies the
                // observed totals exactly once.
                let totals = crate::shard::ingest_stream(stream, &self.schema);
                for (reg, total) in self.registers.iter_mut().zip(totals) {
                    reg.increment(total * factor);
                }
            }
        }
        // Publish the blinded registers (a malformed DC drops one —
        // the TS's structural check rejects the short vector).
        let mut values: Vec<u64> = self.registers.iter().map(|r| r.publish()).collect();
        if self.malformed {
            values.pop();
        }
        let msg = messages::Registers { values };
        ep.send(&self.ts, messages::frame_of(tag::DC_RESULT, &msg))?;
        Ok(())
    }
}

impl Node for DcNode {
    fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
        Ok(Step::Continue) // wait for Configure
    }

    fn on_message(&mut self, ep: &Endpoint, env: Envelope) -> Result<Step, NodeError> {
        match env.frame.msg_type {
            tag::CONFIGURE => {
                let cfg: messages::Configure = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad configure: {e}")))?;
                self.on_configure(ep, cfg)?;
                Ok(Step::Continue)
            }
            tag::START => {
                self.on_start(ep)?;
                Ok(Step::Done)
            }
            other => Err(NodeError::Protocol(format!(
                "DC received unexpected message type {other}"
            ))),
        }
    }

    fn role(&self) -> &'static str {
        "privcount-dc"
    }
}
