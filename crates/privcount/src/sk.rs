//! The Share Keeper node.
//!
//! Holds one blinding-share accumulator per counter. PrivCount's privacy
//! rests on at least one SK being honest: the sum it publishes at round
//! end is useless without every other party's registers.

use crate::messages::{self, tag};
use pm_crypto::elgamal::{hybrid_decrypt, keygen, KeyPair};
use pm_crypto::group::GroupParams;
use pm_crypto::secret::{BlindingShare, ShareAccumulator};
use pm_net::party::{Node, NodeError, Step};
use pm_net::transport::{Endpoint, Envelope, PartyId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Share Keeper.
pub struct SkNode {
    ts: PartyId,
    gp: GroupParams,
    keypair: KeyPair,
    accumulators: Vec<ShareAccumulator>,
    expected_dcs: usize,
    seen_dcs: usize,
    /// Failure knob: go silent after handling this many messages.
    die_after: Option<u32>,
}

impl SkNode {
    /// Creates an SK expecting shares from `expected_dcs` Data
    /// Collectors.
    pub fn new(ts: PartyId, expected_dcs: usize, seed: u64) -> SkNode {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let keypair = keygen(&gp, &mut rng);
        SkNode {
            ts,
            gp,
            keypair,
            accumulators: Vec::new(),
            expected_dcs,
            seen_dcs: 0,
            die_after: None,
        }
    }

    /// Failure variant ([`crate::adversary::Attack::SkDeath`]): the SK
    /// handles `messages` messages, then goes silent. The round can no
    /// longer telescope the blinding away; the deterministic runner's
    /// deadlock detector reports the stuck parties.
    pub fn dying_after(mut self, messages: u32) -> SkNode {
        self.die_after = Some(messages);
        self
    }

    fn absorb(&mut self, msg: messages::EncryptedShares) -> Result<(), NodeError> {
        let plain = hybrid_decrypt(&self.gp, &self.keypair.secret, &msg.ciphertext());
        if !plain.len().is_multiple_of(8) {
            return Err(NodeError::Protocol(format!(
                "share payload from {} has invalid length {}",
                msg.dc_name,
                plain.len()
            )));
        }
        let shares: Vec<u64> = plain
            .chunks_exact(8)
            // lint:allow(panic) chunks_exact(8) guarantees the width
            .map(|c| u64::from_be_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        if self.accumulators.is_empty() {
            self.accumulators = vec![ShareAccumulator::default(); shares.len()];
        }
        if shares.len() != self.accumulators.len() {
            return Err(NodeError::Protocol(format!(
                "DC {} sent {} shares, expected {}",
                msg.dc_name,
                shares.len(),
                self.accumulators.len()
            )));
        }
        for (acc, s) in self.accumulators.iter_mut().zip(shares) {
            acc.absorb(BlindingShare(s));
        }
        self.seen_dcs += 1;
        Ok(())
    }
}

impl Node for SkNode {
    fn on_start(&mut self, ep: &Endpoint) -> Result<Step, NodeError> {
        let msg = messages::SkKey {
            key: self.keypair.public.0,
        };
        ep.send(&self.ts, messages::frame_of(tag::SK_KEY, &msg))?;
        Ok(Step::Continue)
    }

    fn on_message(&mut self, ep: &Endpoint, env: Envelope) -> Result<Step, NodeError> {
        // A dying SK pretends to finish: it stops reading without
        // error, leaving the rest of the round stuck mid-protocol.
        if let Some(remaining) = self.die_after.as_mut() {
            if *remaining == 0 {
                return Ok(Step::Done);
            }
            *remaining -= 1;
        }
        match env.frame.msg_type {
            tag::SHARES_FWD => {
                let msg: messages::EncryptedShares = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad shares: {e}")))?;
                let dc_name = msg.dc_name.clone();
                self.absorb(msg)?;
                // Acknowledge so the TS knows when to start collection.
                let ack = messages::EncryptedShares {
                    sk_name: ep.id().as_str().to_string(),
                    dc_name,
                    kem: self.keypair.public.0,
                    payload: Vec::new(),
                };
                ep.send(&self.ts, messages::frame_of(tag::SHARES_ACK, &ack))?;
                Ok(Step::Continue)
            }
            tag::STOP => {
                if self.seen_dcs != self.expected_dcs {
                    return Err(NodeError::Protocol(format!(
                        "stop before all shares arrived: {}/{}",
                        self.seen_dcs, self.expected_dcs
                    )));
                }
                let msg = messages::Registers {
                    values: self.accumulators.iter().map(|a| a.publish()).collect(),
                };
                ep.send(&self.ts, messages::frame_of(tag::SK_RESULT, &msg))?;
                Ok(Step::Done)
            }
            other => Err(NodeError::Protocol(format!(
                "SK received unexpected message type {other}"
            ))),
        }
    }

    fn role(&self) -> &'static str {
        "privcount-sk"
    }
}
