//! Attack injection: seed-deterministic Byzantine behaviour for the
//! adversarial scenario suite.
//!
//! PrivCount's threat model (§2 of the PrivCount paper, §3 of the
//! measurement study) tolerates misbehaving Data Collectors and Share
//! Keepers as long as the failure is *visible*: either a party detects
//! the malformed input and refuses to continue, or the round wedges
//! and the runner's deadlock detector names the stuck parties, or the
//! published total is implausible enough for the caller's statistical
//! checks. This module injects each of those behaviours on demand so
//! the study harness can assert the detection actually happens instead
//! of the campaign panicking.
//!
//! Every attack is **deterministic in the round seed**: an inflating
//! DC multiplies its honest totals, a corrupting DC truncates the
//! ciphertext it would have sent anyway, so an attacked round renders
//! bit-identically across schedules and shard counts.
//!
//! | Attack | Behaviour | Detected by |
//! |---|---|---|
//! | [`Attack::MalformedRegisters`] | DC publishes too few registers | TS structural check (`DC result length mismatch`) |
//! | [`Attack::InflatedCounts`] | DC multiplies every observed increment | statistically, by the caller (implausible total) |
//! | [`Attack::SkDeath`] | SK stops after N handled messages | runner deadlock detector |
//! | [`Attack::BadSharePayload`] | DC truncates an encrypted blinding-share payload | the receiving SK (`invalid length`) |
//! | [`Attack::NoiseExhaustion`] | DC's noise budget covers fewer counters than configured | the exhausted DC itself, which refuses to run under-noised |
//!
//! Attacks force the deterministic scheduler: the threaded runner has
//! no deadlock detector, so a dead keeper would hang it forever
//! instead of failing loudly.

/// A Byzantine behaviour to inject into one PrivCount round.
///
/// Party indices refer to the round's DC/SK ordering
/// (`dc-{i}` / `sk-{i}`); an out-of-range index injects nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Attack {
    /// Honest round (the default).
    #[default]
    None,
    /// DC `dc` publishes one register too few — the coarsest
    /// malformed-share attack, caught by the TS's structural check.
    MalformedRegisters {
        /// Index of the Byzantine DC.
        dc: usize,
    },
    /// DC `dc` multiplies every observed increment by `factor` — a
    /// statistically-skewed share. Blinding makes bogus increments
    /// indistinguishable from real ones at the protocol layer, so
    /// detection is the *caller's* job: the published total lands
    /// implausibly far above the honest population.
    InflatedCounts {
        /// Index of the Byzantine DC.
        dc: usize,
        /// Multiplier applied to each observed increment.
        factor: i64,
    },
    /// SK `sk` stops participating after handling `after_messages`
    /// messages — a share keeper dying mid-round. The TS can never
    /// telescope the blinding away; the deterministic runner's
    /// deadlock detector reports the stuck parties.
    SkDeath {
        /// Index of the dying SK.
        sk: usize,
        /// Messages the SK handles before going silent.
        after_messages: u32,
    },
    /// DC `dc` truncates the encrypted blinding-share payload it sends
    /// to the first SK. The stream cipher decrypts the stump to a
    /// wrong-length share vector, which the SK rejects by name.
    BadSharePayload {
        /// Index of the Byzantine DC.
        dc: usize,
    },
    /// DC `dc` has only `budget` noise draws left — fewer than the
    /// configured counters. Publishing under-noised registers would
    /// silently weaken the round's differential privacy, so the DC
    /// refuses to configure and fails the round loudly instead.
    NoiseExhaustion {
        /// Index of the exhausted DC.
        dc: usize,
        /// Per-counter noise draws the DC can still afford.
        budget: u32,
    },
}

impl Attack {
    /// True when any behaviour is injected.
    pub fn is_active(&self) -> bool {
        *self != Attack::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterSpec;
    use crate::dc::EventGenerator;
    use crate::round::{run_round, NoiseAllocation, RoundConfig};
    use pm_net::transport::FaultConfig;
    use std::sync::Arc;
    use torsim::events::TorEvent;
    use torsim::ids::{IpAddr, RelayId};

    fn generators(counts: &[u64]) -> Vec<EventGenerator> {
        counts
            .iter()
            .map(|&n| {
                let g: EventGenerator = Box::new(move |sink| {
                    for i in 0..n {
                        sink(TorEvent::EntryConnection {
                            relay: RelayId(0),
                            client_ip: IpAddr(i as u32),
                        });
                    }
                });
                g
            })
            .collect()
    }

    fn cfg(adversary: Attack) -> RoundConfig {
        RoundConfig {
            counters: vec![CounterSpec::with_sigma("connections", 0.0)],
            mapper: Arc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
                if matches!(ev, TorEvent::EntryConnection { .. }) {
                    emit(0, 1);
                }
            }),
            num_sks: 2,
            noise: NoiseAllocation::None,
            seed: 11,
            threaded: false,
            faults: FaultConfig::none(),
            fabric: Default::default(),
            adversary,
            recorder: Default::default(),
        }
    }

    #[test]
    fn malformed_registers_detected_by_ts() {
        let err = run_round(
            cfg(Attack::MalformedRegisters { dc: 1 }),
            generators(&[5, 7]),
        )
        .unwrap_err();
        assert_eq!(err.detected_by().map(|p| p.as_str()), Some("ts"));
        assert!(err.reason().contains("DC result length mismatch"), "{err}");
    }

    #[test]
    fn inflated_counts_skew_the_total_deterministically() {
        let run = |attack| {
            run_round(cfg(attack), generators(&[5, 7]))
                .unwrap()
                .total("connections")
        };
        assert_eq!(run(Attack::None), 12);
        let inflated = run(Attack::InflatedCounts { dc: 0, factor: 100 });
        assert_eq!(inflated, 5 * 100 + 7);
        // Seed-deterministic: the same attacked round twice.
        assert_eq!(inflated, run(Attack::InflatedCounts { dc: 0, factor: 100 }));
    }

    #[test]
    fn sk_death_is_caught_by_the_deadlock_detector() {
        let err = run_round(
            cfg(Attack::SkDeath {
                sk: 0,
                after_messages: 1,
            }),
            generators(&[3]),
        )
        .unwrap_err();
        assert!(err.detected_by().is_none(), "runner-level: {err}");
        assert!(err.reason().contains("deadlock"), "{err}");
        assert!(err.reason().contains("ts"), "{err}");
    }

    #[test]
    fn bad_share_payload_is_rejected_by_the_sk() {
        let err =
            run_round(cfg(Attack::BadSharePayload { dc: 0 }), generators(&[3, 4])).unwrap_err();
        assert_eq!(err.detected_by().map(|p| p.as_str()), Some("sk-0"));
        assert!(err.reason().contains("invalid length"), "{err}");
        assert!(err.reason().contains("dc-0"), "{err}");
    }

    #[test]
    fn noise_exhaustion_refuses_to_configure() {
        let mut config = cfg(Attack::NoiseExhaustion { dc: 1, budget: 0 });
        config.counters.push(CounterSpec::with_sigma("bytes", 0.0));
        let err = run_round(config, generators(&[3, 4])).unwrap_err();
        assert_eq!(err.detected_by().map(|p| p.as_str()), Some("dc-1"));
        assert!(err.reason().contains("noise budget exhausted"), "{err}");
    }

    #[test]
    fn out_of_range_attack_index_is_inert() {
        let result = run_round(
            cfg(Attack::MalformedRegisters { dc: 9 }),
            generators(&[5, 7]),
        )
        .unwrap();
        assert_eq!(result.total("connections"), 12);
    }
}
