//! The paper's concrete PrivCount counter schemas.
//!
//! Each builder returns a [`Schema`] whose σ values are calibrated from
//! the Table 1 action bounds and the round's (ε, δ) budget, split
//! equally across the round's counters (δ additionally splits across
//! counters; see `pm_dp::budget`). Sensitivities follow §3.2: the
//! number of counter units a single user's bounded 24-hour activity can
//! contribute.

use crate::counter::{CounterSpec, EventMapper, Schema};
use pm_dp::bounds::{bound_for, Action};
use pm_dp::budget::allocate_delta;
use std::sync::Arc;
use torsim::events::{AddrKind, DescFetchOutcome, PortClass, RendOutcome, TorEvent};
use torsim::geo::GeoDb;
use torsim::ids::CountryCode;
use torsim::sites::{Family, SiteList, MEASURED_TLDS};

/// Streams per protected domain connection: a site visit loads embedded
/// resources over subsequent streams; 100/visit is the generous per-user
/// allowance used for the total-streams sensitivity.
pub const STREAMS_PER_DOMAIN: f64 = 100.0;

fn specs_equal_budget(names_and_sens: &[(&str, f64)], eps: f64, delta: f64) -> Vec<CounterSpec> {
    let n = names_and_sens.len();
    let eps_each = eps / n as f64;
    let delta_each = allocate_delta(n, delta);
    names_and_sens
        .iter()
        .map(|(name, sens)| CounterSpec::calibrated(*name, *sens, eps_each, delta_each))
        .collect()
}

/// Figure 1: stream-type breakdown at exits.
pub fn exit_streams(eps: f64, delta: f64) -> Schema {
    let d = bound_for(Action::ConnectToDomain) as f64;
    let specs = specs_equal_budget(
        &[
            ("streams.total", d * STREAMS_PER_DOMAIN),
            ("streams.initial", d),
            ("initial.hostname", d),
            ("initial.ipv4", d),
            ("initial.ipv6", d),
            ("hostname.web", d),
            ("hostname.other", d),
        ],
        eps,
        delta,
    );
    let mapper: EventMapper = Arc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        if let TorEvent::ExitStream {
            initial,
            addr,
            port,
            ..
        } = ev
        {
            emit(0, 1);
            if !initial {
                return;
            }
            emit(1, 1);
            match addr {
                AddrKind::Hostname => {
                    emit(2, 1);
                    match port {
                        PortClass::Web => emit(5, 1),
                        PortClass::Other => emit(6, 1),
                    }
                }
                AddrKind::Ipv4Literal => emit(3, 1),
                AddrKind::Ipv6Literal => emit(4, 1),
            }
        }
    });
    Schema::new(specs, mapper)
}

/// Figure 2 (top): primary domains by Alexa rank set, with
/// torproject.org separated.
pub fn alexa_rank_histogram(sites: Arc<SiteList>, eps: f64, delta: f64) -> Schema {
    let d = bound_for(Action::ConnectToDomain) as f64;
    // The rank-set bins partition primary-domain connections (parallel
    // composition: full budget per bin); the running total is one
    // additional sequential query, so bins and total each get ε/2.
    let (eps_bin, eps_total) = (eps / 2.0, eps / 2.0);
    let (delta_bin, delta_total) = (delta / 2.0, delta / 2.0);
    let bin = |name: &str| CounterSpec::calibrated(name, d, eps_bin, delta_bin);
    let specs = vec![
        bin("rank.(0,10]"),
        bin("rank.(10,100]"),
        bin("rank.(100,1k]"),
        bin("rank.(1k,10k]"),
        bin("rank.(10k,100k]"),
        bin("rank.(100k,1m]"),
        bin("rank.other"),
        bin("rank.torproject"),
        CounterSpec::calibrated("rank.total", d, eps_total, delta_total),
    ];
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        let Some(domain) = primary_domain(ev) else {
            return;
        };
        emit(8, 1);
        if sites.family(domain) == Some(Family::Torproject) {
            emit(7, 1);
            return;
        }
        match sites.rank(domain) {
            Some(rank) => emit(SiteList::rank_set_index(rank), 1),
            None => emit(6, 1),
        }
    });
    Schema::new(specs, mapper)
}

/// Figure 2 (bottom): primary domains by top-10 sibling family.
pub fn alexa_siblings_histogram(sites: Arc<SiteList>, eps: f64, delta: f64) -> Schema {
    let d = bound_for(Action::ConnectToDomain) as f64;
    // Family bins partition the events (parallel composition); the
    // total is one extra sequential query.
    let (eps_bin, eps_total) = (eps / 2.0, eps / 2.0);
    let (delta_bin, delta_total) = (delta / 2.0, delta / 2.0);
    let mut specs: Vec<CounterSpec> = Family::ALL
        .iter()
        .map(|f| CounterSpec::calibrated(format!("family.{}", f.basename()), d, eps_bin, delta_bin))
        .collect();
    specs.push(CounterSpec::calibrated(
        "family.other",
        d,
        eps_bin,
        delta_bin,
    ));
    specs.push(CounterSpec::calibrated(
        "family.total",
        d,
        eps_total,
        delta_total,
    ));
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        let Some(domain) = primary_domain(ev) else {
            return;
        };
        emit(Family::ALL.len() + 1, 1); // total
        match sites.family(domain) {
            Some(f) => {
                // lint:allow(panic) Family::ALL enumerates every Family variant
                let idx = Family::ALL.iter().position(|g| *g == f).expect("family");
                emit(idx, 1);
            }
            None => emit(Family::ALL.len(), 1),
        }
    });
    Schema::new(specs, mapper)
}

/// Figure 3: primary domains by TLD. With `alexa_only`, only domains in
/// the Alexa list are classified (and torproject.org is separated, as
/// in the paper's second TLD measurement).
pub fn tld_histogram(sites: Arc<SiteList>, alexa_only: bool, eps: f64, delta: f64) -> Schema {
    let d = bound_for(Action::ConnectToDomain) as f64;
    // TLD bins partition the events (parallel composition); the total
    // is one extra sequential query.
    let (eps_bin, eps_total) = (eps / 2.0, eps / 2.0);
    let (delta_bin, delta_total) = (delta / 2.0, delta / 2.0);
    let mut specs: Vec<CounterSpec> = MEASURED_TLDS
        .iter()
        .map(|t| CounterSpec::calibrated(format!("tld.{t}"), d, eps_bin, delta_bin))
        .collect();
    specs.push(CounterSpec::calibrated("tld.other", d, eps_bin, delta_bin));
    specs.push(CounterSpec::calibrated(
        "tld.torproject",
        d,
        eps_bin,
        delta_bin,
    ));
    specs.push(CounterSpec::calibrated(
        "tld.total",
        d,
        eps_total,
        delta_total,
    ));
    let other_idx = MEASURED_TLDS.len();
    let torproject_idx = other_idx + 1;
    let total_idx = other_idx + 2;
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        let Some(domain) = primary_domain(ev) else {
            return;
        };
        emit(total_idx, 1);
        if alexa_only && !sites.in_alexa(domain) {
            // The Alexa-only measurement still normalizes over all
            // primary domains; non-members land in "other" (this is why
            // the paper's Alexa-row "other" jumps to 26.1%).
            emit(other_idx, 1);
            return;
        }
        if alexa_only && sites.family(domain) == Some(Family::Torproject) {
            // The Alexa-only measurement used a separate torproject
            // counter; the all-sites wildcard measurement could not.
            emit(torproject_idx, 1);
            return;
        }
        let tld = sites.tld(domain);
        match MEASURED_TLDS.iter().position(|t| *t == tld) {
            Some(i) => emit(i, 1),
            None => emit(other_idx, 1),
        }
    });
    Schema::new(specs, mapper)
}

/// Table 4: client connections, circuits, and bytes at guards.
pub fn client_traffic(eps: f64, delta: f64) -> Schema {
    let specs = specs_equal_budget(
        &[
            (
                "client.connections",
                bound_for(Action::TcpConnectionToGuard) as f64,
            ),
            (
                "client.circuits",
                bound_for(Action::CircuitThroughGuard) as f64,
            ),
            ("client.bytes", bound_for(Action::EntryData) as f64),
        ],
        eps,
        delta,
    );
    let mapper: EventMapper =
        Arc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| match ev {
            TorEvent::EntryConnection { .. } => emit(0, 1),
            TorEvent::EntryCircuit { .. } => emit(1, 1),
            TorEvent::EntryBytes { bytes, .. } => emit(2, *bytes as i64),
            _ => {}
        });
    Schema::new(specs, mapper)
}

/// Which client statistic a per-country histogram counts (Figure 4's
/// three panels; the paper ran them as separate measurements).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountryStat {
    /// Client connections.
    Connections,
    /// Client bytes.
    Bytes,
    /// Client circuits.
    Circuits,
}

/// Figure 4: one counter per country for the chosen statistic.
pub fn country_histogram(geo: Arc<GeoDb>, stat: CountryStat, eps: f64, delta: f64) -> Schema {
    let sens = match stat {
        CountryStat::Connections => bound_for(Action::TcpConnectionToGuard) as f64,
        CountryStat::Bytes => bound_for(Action::EntryData) as f64,
        CountryStat::Circuits => bound_for(Action::CircuitThroughGuard) as f64,
    };
    let countries: Vec<CountryCode> = geo.countries().collect();
    // The country bins partition the events (one client IP maps to one
    // country), so parallel composition applies: every bin gets the full
    // round budget, as PrivCount's independent-bin histograms do (§2.3).
    let specs: Vec<CounterSpec> = countries
        .iter()
        .map(|c| CounterSpec::calibrated(format!("country.{c}"), sens, eps, delta))
        .collect();
    // Ordered: the counter layout above iterates `countries` in GeoDb
    // order, and a BTreeMap keeps the lookup side free of hash-order
    // hazards should anyone ever iterate it.
    let index: std::collections::BTreeMap<CountryCode, usize> =
        countries.iter().enumerate().map(|(i, c)| (*c, i)).collect();
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        let (ip, delta_v) = match (stat, ev) {
            (CountryStat::Connections, TorEvent::EntryConnection { client_ip, .. }) => {
                (*client_ip, 1)
            }
            (
                CountryStat::Bytes,
                TorEvent::EntryBytes {
                    client_ip, bytes, ..
                },
            ) => (*client_ip, *bytes as i64),
            (CountryStat::Circuits, TorEvent::EntryCircuit { client_ip, .. }) => (*client_ip, 1),
            _ => return,
        };
        if let Some(idx) = index.get(&geo.country_of(ip)) {
            emit(*idx, delta_v);
        }
    });
    Schema::new(specs, mapper)
}

/// Table 7: descriptor fetch outcomes at HSDirs, with the ahmia-style
/// public/unknown split of successful fetches. `is_public` classifies
/// an address as publicly indexed.
pub fn hsdir_fetches(
    is_public: Arc<dyn Fn(&torsim::ids::OnionAddr) -> bool + Send + Sync>,
    eps: f64,
    delta: f64,
) -> Schema {
    let d = bound_for(Action::FetchDescriptor) as f64;
    let specs = specs_equal_budget(
        &[
            ("desc.fetched", d),
            ("desc.succeeded", d),
            ("desc.failed", d),
            ("desc.failed.malformed", d),
            ("desc.public", d),
            ("desc.unknown", d),
        ],
        eps,
        delta,
    );
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        if let TorEvent::HsDescFetch { addr, outcome, .. } = ev {
            emit(0, 1);
            match outcome {
                DescFetchOutcome::Success => {
                    emit(1, 1);
                    if let Some(a) = addr {
                        if is_public(a) {
                            emit(4, 1);
                        } else {
                            emit(5, 1);
                        }
                    }
                }
                DescFetchOutcome::NotFound => emit(2, 1),
                DescFetchOutcome::Malformed => {
                    emit(2, 1);
                    emit(3, 1);
                }
            }
        }
    });
    Schema::new(specs, mapper)
}

/// Table 8: rendezvous circuit outcomes and payload at RPs.
pub fn rendezvous(eps: f64, delta: f64) -> Schema {
    // A rendezvous connection creates up to 2 circuits at the RP.
    let circ = bound_for(Action::RendezvousConnection) as f64 * 2.0;
    let bytes = bound_for(Action::RendezvousData) as f64;
    let specs = specs_equal_budget(
        &[
            ("rend.circuits", circ),
            ("rend.succeeded", circ),
            ("rend.failed.connclosed", circ),
            ("rend.failed.expired", circ),
            ("rend.payload_bytes", bytes),
        ],
        eps,
        delta,
    );
    let mapper: EventMapper = Arc::new(|ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        if let TorEvent::RendCircuit {
            outcome,
            payload_bytes,
            ..
        } = ev
        {
            emit(0, 1);
            match outcome {
                RendOutcome::ActiveSuccess => {
                    emit(1, 1);
                    emit(4, *payload_bytes as i64);
                }
                RendOutcome::ConnClosed => emit(2, 1),
                RendOutcome::Expired => emit(3, 1),
                RendOutcome::InactiveOther => {}
            }
        }
    });
    Schema::new(specs, mapper)
}

/// §4.3 "Alexa Categories": one counter per category (Alexa caps
/// categories at 50 sites each), plus uncategorized and total.
pub fn category_histogram(sites: Arc<SiteList>, eps: f64, delta: f64) -> Schema {
    let d = bound_for(Action::ConnectToDomain) as f64;
    let num_categories = 17usize;
    let (eps_bin, eps_total) = (eps / 2.0, eps / 2.0);
    let (delta_bin, delta_total) = (delta / 2.0, delta / 2.0);
    let mut specs: Vec<CounterSpec> = (0..num_categories)
        .map(|c| CounterSpec::calibrated(format!("category.{c}"), d, eps_bin, delta_bin))
        .collect();
    specs.push(CounterSpec::calibrated(
        "category.none",
        d,
        eps_bin,
        delta_bin,
    ));
    specs.push(CounterSpec::calibrated(
        "category.total",
        d,
        eps_total,
        delta_total,
    ));
    let none_idx = num_categories;
    let total_idx = num_categories + 1;
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        let Some(domain) = primary_domain(ev) else {
            return;
        };
        emit(total_idx, 1);
        match sites.category(domain) {
            Some(c) if c < num_categories => emit(c, 1),
            _ => emit(none_idx, 1),
        }
    });
    Schema::new(specs, mapper)
}

/// §5.2 "Network Diversity": one counter per CAIDA top-1000 AS rank
/// bucket plus the outside-top-1000 remainder, for hotspot detection.
/// Buckets of 50 ranks keep the schema at 21 counters while preserving
/// the top-1000 vs rest comparison.
pub fn as_histogram(asdb: Arc<torsim::asn::AsDb>, eps: f64, delta: f64) -> Schema {
    let sens = bound_for(Action::TcpConnectionToGuard) as f64;
    let buckets = 20usize; // ranks 1..=1000 in buckets of 50
    let (eps_bin, eps_total) = (eps / 2.0, eps / 2.0);
    let (delta_bin, delta_total) = (delta / 2.0, delta / 2.0);
    let mut specs: Vec<CounterSpec> = (0..buckets)
        .map(|b| {
            CounterSpec::calibrated(
                format!("as.rank{}-{}", b * 50 + 1, (b + 1) * 50),
                sens,
                eps_bin,
                delta_bin,
            )
        })
        .collect();
    specs.push(CounterSpec::calibrated(
        "as.outside_top1000",
        sens,
        eps_bin,
        delta_bin,
    ));
    specs.push(CounterSpec::calibrated(
        "as.total",
        sens,
        eps_total,
        delta_total,
    ));
    let outside_idx = buckets;
    let total_idx = buckets + 1;
    let mapper: EventMapper = Arc::new(move |ev: &TorEvent, emit: &mut dyn FnMut(usize, i64)| {
        if let TorEvent::EntryConnection { client_ip, .. } = ev {
            emit(total_idx, 1);
            let rank = asdb.rank_of(asdb.as_of(*client_ip));
            if rank <= 1000 {
                emit(((rank - 1) / 50) as usize, 1);
            } else {
                emit(outside_idx, 1);
            }
        }
    });
    Schema::new(specs, mapper)
}

/// The primary domain of an event: the destination of an initial,
/// hostname, web-port exit stream (§4.1).
pub fn primary_domain(ev: &TorEvent) -> Option<torsim::ids::DomainId> {
    match ev {
        TorEvent::ExitStream {
            initial: true,
            addr: AddrKind::Hostname,
            port: PortClass::Web,
            domain,
            ..
        } => *domain,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torsim::ids::{DomainId, IpAddr, OnionAddr, RelayId};
    use torsim::sites::SiteListConfig;

    fn sites() -> Arc<SiteList> {
        Arc::new(SiteList::new(SiteListConfig {
            alexa_size: 20_000,
            long_tail_size: 1_000,
            seed: 1,
        }))
    }

    fn run_schema(schema: &Schema, events: &[TorEvent]) -> Vec<i64> {
        let mut counts = vec![0i64; schema.len()];
        for ev in events {
            (schema.mapper)(ev, &mut |i, v| counts[i] += v);
        }
        counts
    }

    fn initial_stream(domain: DomainId) -> TorEvent {
        TorEvent::ExitStream {
            relay: RelayId(0),
            initial: true,
            addr: AddrKind::Hostname,
            port: PortClass::Web,
            domain: Some(domain),
        }
    }

    #[test]
    fn exit_streams_classification() {
        let schema = exit_streams(0.3, 1e-11);
        let events = vec![
            initial_stream(DomainId(0)),
            TorEvent::ExitStream {
                relay: RelayId(0),
                initial: false,
                addr: AddrKind::Hostname,
                port: PortClass::Web,
                domain: None,
            },
            TorEvent::ExitStream {
                relay: RelayId(0),
                initial: true,
                addr: AddrKind::Ipv4Literal,
                port: PortClass::Web,
                domain: None,
            },
            TorEvent::ExitStream {
                relay: RelayId(0),
                initial: true,
                addr: AddrKind::Hostname,
                port: PortClass::Other,
                domain: None,
            },
        ];
        let c = run_schema(&schema, &events);
        assert_eq!(c[0], 4); // total
        assert_eq!(c[1], 3); // initial
        assert_eq!(c[2], 2); // hostname
        assert_eq!(c[3], 1); // ipv4
        assert_eq!(c[5], 1); // web
        assert_eq!(c[6], 1); // other port
    }

    #[test]
    fn rank_histogram_routes_torproject_separately() {
        let s = sites();
        let schema = alexa_rank_histogram(s.clone(), 0.3, 1e-11);
        let events = vec![
            initial_stream(s.domain_of_rank(1)),      // set 0
            initial_stream(s.domain_of_rank(500)),    // set 2
            initial_stream(s.domain_of_rank(10_244)), // torproject
            initial_stream(s.long_tail_domain(3)),    // other
        ];
        let c = run_schema(&schema, &events);
        assert_eq!(c[0], 1);
        assert_eq!(c[2], 1);
        assert_eq!(c[7], 1); // torproject
        assert_eq!(c[6], 1); // other
        assert_eq!(c[8], 4); // total
    }

    #[test]
    fn siblings_histogram_families() {
        let s = sites();
        let schema = alexa_siblings_histogram(s.clone(), 0.3, 1e-11);
        let events = vec![
            initial_stream(s.domain_of_rank(10)), // amazon head
            initial_stream(s.domain_of_rank(11)), // non-family
        ];
        let c = run_schema(&schema, &events);
        let amazon_idx = Family::ALL
            .iter()
            .position(|f| *f == Family::Amazon)
            .unwrap();
        assert_eq!(c[amazon_idx], 1);
        assert_eq!(c[Family::ALL.len()], 1); // other
        assert_eq!(c[Family::ALL.len() + 1], 2); // total
    }

    #[test]
    fn tld_histogram_alexa_only_filters() {
        let s = sites();
        let all = tld_histogram(s.clone(), false, 0.3, 1e-11);
        let alexa = tld_histogram(s.clone(), true, 0.3, 1e-11);
        let events = vec![
            initial_stream(s.domain_of_rank(10_244)), // torproject (.org)
            initial_stream(s.long_tail_domain(5)),    // non-Alexa
        ];
        let call = run_schema(&all, &events);
        let calexa = run_schema(&alexa, &events);
        let total_idx = MEASURED_TLDS.len() + 2;
        let tp_idx = MEASURED_TLDS.len() + 1;
        let org_idx = MEASURED_TLDS.iter().position(|t| *t == "org").unwrap();
        // All-sites: torproject counts under .org (no separate counter
        // possible with wildcards); both events counted.
        assert_eq!(call[total_idx], 2);
        assert_eq!(call[org_idx], 1);
        // Alexa-only: long-tail domain counted as "other"; torproject
        // separated out of .org.
        assert_eq!(calexa[total_idx], 2);
        assert_eq!(calexa[tp_idx], 1);
        assert_eq!(calexa[org_idx], 0);
        let other_idx = MEASURED_TLDS.len();
        assert_eq!(calexa[other_idx], 1);
    }

    #[test]
    fn client_traffic_counts() {
        let schema = client_traffic(0.3, 1e-11);
        let events = vec![
            TorEvent::EntryConnection {
                relay: RelayId(0),
                client_ip: IpAddr(1),
            },
            TorEvent::EntryCircuit {
                relay: RelayId(0),
                client_ip: IpAddr(1),
            },
            TorEvent::EntryBytes {
                relay: RelayId(0),
                client_ip: IpAddr(1),
                bytes: 1 << 20,
            },
        ];
        let c = run_schema(&schema, &events);
        assert_eq!(c, vec![1, 1, 1 << 20]);
    }

    #[test]
    fn country_histogram_attribution() {
        let geo = Arc::new(GeoDb::paper_default());
        let schema = country_histogram(geo.clone(), CountryStat::Connections, 0.3, 1e-11);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let us_ip = geo.sample_ip_in(CountryCode::new("US"), &mut rng).unwrap();
        let events = vec![TorEvent::EntryConnection {
            relay: RelayId(0),
            client_ip: us_ip,
        }];
        let c = run_schema(&schema, &events);
        let us_idx = schema.index_of("country.US").unwrap();
        assert_eq!(c[us_idx], 1);
        assert_eq!(c.iter().sum::<i64>(), 1);
    }

    #[test]
    fn hsdir_fetch_outcomes() {
        let is_public = Arc::new(|a: &OnionAddr| a.0[0].is_multiple_of(2));
        let schema = hsdir_fetches(is_public.clone(), 0.3, 1e-11);
        // Find one public and one private address under the classifier.
        let mut public = None;
        let mut private = None;
        for i in 0..100 {
            let a = OnionAddr::from_index(i);
            if a.0[0].is_multiple_of(2) && public.is_none() {
                public = Some(a);
            }
            if a.0[0] % 2 == 1 && private.is_none() {
                private = Some(a);
            }
        }
        let events = vec![
            TorEvent::HsDescFetch {
                relay: RelayId(0),
                addr: Some(public.unwrap()),
                outcome: DescFetchOutcome::Success,
            },
            TorEvent::HsDescFetch {
                relay: RelayId(0),
                addr: Some(private.unwrap()),
                outcome: DescFetchOutcome::Success,
            },
            TorEvent::HsDescFetch {
                relay: RelayId(0),
                addr: None,
                outcome: DescFetchOutcome::Malformed,
            },
            TorEvent::HsDescFetch {
                relay: RelayId(0),
                addr: Some(OnionAddr::from_index(999)),
                outcome: DescFetchOutcome::NotFound,
            },
        ];
        let c = run_schema(&schema, &events);
        assert_eq!(c[0], 4); // fetched
        assert_eq!(c[1], 2); // succeeded
        assert_eq!(c[2], 2); // failed
        assert_eq!(c[3], 1); // malformed
        assert_eq!(c[4], 1); // public
        assert_eq!(c[5], 1); // unknown
    }

    #[test]
    fn rendezvous_payload_only_on_success() {
        let schema = rendezvous(0.3, 1e-11);
        let events = vec![
            TorEvent::RendCircuit {
                relay: RelayId(0),
                outcome: RendOutcome::ActiveSuccess,
                payload_bytes: 1000,
            },
            TorEvent::RendCircuit {
                relay: RelayId(0),
                outcome: RendOutcome::Expired,
                payload_bytes: 0,
            },
            TorEvent::RendCircuit {
                relay: RelayId(0),
                outcome: RendOutcome::ConnClosed,
                payload_bytes: 0,
            },
            TorEvent::RendCircuit {
                relay: RelayId(0),
                outcome: RendOutcome::InactiveOther,
                payload_bytes: 0,
            },
        ];
        let c = run_schema(&schema, &events);
        assert_eq!(c[0], 4);
        assert_eq!(c[1], 1);
        assert_eq!(c[2], 1);
        assert_eq!(c[3], 1);
        assert_eq!(c[4], 1000);
    }

    #[test]
    fn histogram_bins_use_parallel_composition() {
        // Partitioning bins share the budget via parallel composition:
        // a 250-bin country histogram must NOT have 250× the noise of a
        // 2-bin one.
        let geo = Arc::new(GeoDb::paper_default());
        let h = country_histogram(geo, CountryStat::Connections, 0.3, 1e-11);
        let single = CounterSpec::calibrated("solo", 12.0, 0.3, 1e-11);
        assert!((h.counters[0].sigma - single.sigma).abs() < 1e-9);
        // Overlapping counters still split sequentially.
        let few = exit_streams(0.3, 1e-11);
        let s_total = few
            .counters
            .iter()
            .find(|c| c.name == "streams.initial")
            .unwrap()
            .sigma;
        let s_solo = CounterSpec::calibrated("solo", 20.0, 0.3, 1e-11).sigma;
        assert!(s_total > s_solo);
    }
}
