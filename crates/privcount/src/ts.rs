//! The Tally Server node: round orchestration and final aggregation.
//!
//! The TS is untrusted for privacy (it sees only blinded registers and
//! encrypted shares); it exists to coordinate and to publish the final
//! noisy totals.

use crate::counter::CounterSpec;
use crate::messages::{self, tag};
use parking_lot::Mutex;
use pm_crypto::group::GroupElement;
use pm_crypto::secret::unblind_total;
use pm_net::party::{Node, NodeError, Step};
use pm_net::transport::{Endpoint, Envelope, PartyId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared slot where the TS deposits the round's totals.
pub type ResultSlot = Arc<Mutex<Option<Vec<i64>>>>;

#[allow(clippy::enum_variant_names)] // every phase awaits a protocol message
enum Phase {
    AwaitSkKeys,
    // Shares and acks interleave: an SK acks as soon as its forward
    // arrives, possibly before other DCs have sent their shares.
    AwaitSharesAndAcks,
    AwaitDcResults,
    AwaitSkResults,
}

/// The Tally Server.
pub struct TsNode {
    counters: Vec<CounterSpec>,
    dc_names: Vec<PartyId>,
    sk_names: Vec<PartyId>,
    phase: Phase,
    // Ordered so no code path can ever observe hash order: the DC
    // configure message sorts keys by party name, and a BTreeMap makes
    // that invariant structural rather than a downstream `sort`.
    sk_keys: BTreeMap<PartyId, GroupElement>,
    shares_seen: usize,
    acks_seen: usize,
    dc_results: Vec<Vec<u64>>,
    sk_results: Vec<Vec<u64>>,
    result: ResultSlot,
}

impl TsNode {
    /// Creates a TS coordinating the given DCs and SKs; totals are
    /// deposited into `result`.
    pub fn new(
        counters: Vec<CounterSpec>,
        dc_names: Vec<PartyId>,
        sk_names: Vec<PartyId>,
        result: ResultSlot,
    ) -> TsNode {
        assert!(!dc_names.is_empty() && !sk_names.is_empty());
        TsNode {
            counters,
            dc_names,
            sk_names,
            phase: Phase::AwaitSkKeys,
            sk_keys: BTreeMap::new(),
            shares_seen: 0,
            acks_seen: 0,
            dc_results: Vec::new(),
            sk_results: Vec::new(),
            result,
        }
    }

    fn configure_dcs(&mut self, ep: &Endpoint) -> Result<(), NodeError> {
        let mut sk_keys: Vec<(String, GroupElement)> = Vec::with_capacity(self.sk_names.len());
        for name in &self.sk_names {
            let key = self.sk_keys.get(name).copied().ok_or_else(|| {
                NodeError::Protocol(format!("configure before SK key from {name}"))
            })?;
            sk_keys.push((name.as_str().to_string(), key));
        }
        sk_keys.sort_by(|a, b| a.0.cmp(&b.0));
        let cfg = messages::Configure {
            counter_names: self.counters.iter().map(|c| c.name.clone()).collect(),
            sk_keys,
        };
        for dc in &self.dc_names {
            ep.send(dc, messages::frame_of(tag::CONFIGURE, &cfg))?;
        }
        Ok(())
    }

    fn finalize(&mut self) {
        let n = self.counters.len();
        let mut totals = Vec::with_capacity(n);
        for i in 0..n {
            let dc_vals: Vec<u64> = self.dc_results.iter().map(|r| r[i]).collect();
            let sk_vals: Vec<u64> = self.sk_results.iter().map(|r| r[i]).collect();
            totals.push(unblind_total(&dc_vals, &sk_vals));
        }
        *self.result.lock() = Some(totals);
    }
}

impl Node for TsNode {
    fn on_start(&mut self, _ep: &Endpoint) -> Result<Step, NodeError> {
        Ok(Step::Continue)
    }

    fn on_message(&mut self, ep: &Endpoint, env: Envelope) -> Result<Step, NodeError> {
        match (&self.phase, env.frame.msg_type) {
            (Phase::AwaitSkKeys, tag::SK_KEY) => {
                let msg: messages::SkKey = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad SK key: {e}")))?;
                if !self.sk_names.contains(&env.from) {
                    return Err(NodeError::Protocol(format!(
                        "SK key from unknown party {}",
                        env.from
                    )));
                }
                self.sk_keys.insert(env.from.clone(), msg.key);
                if self.sk_keys.len() == self.sk_names.len() {
                    self.configure_dcs(ep)?;
                    self.phase = Phase::AwaitSharesAndAcks;
                }
                Ok(Step::Continue)
            }
            (Phase::AwaitSharesAndAcks, tag::SHARES) => {
                let msg: messages::EncryptedShares = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad shares: {e}")))?;
                // Forward to the destination SK (DCs have no SK links).
                let sk = PartyId::new(msg.sk_name.clone());
                ep.send(&sk, messages::frame_of(tag::SHARES_FWD, &msg))?;
                self.shares_seen += 1;
                Ok(Step::Continue)
            }
            (Phase::AwaitSharesAndAcks, tag::SHARES_ACK) => {
                self.acks_seen += 1;
                if self.acks_seen == self.dc_names.len() * self.sk_names.len() {
                    for dc in &self.dc_names {
                        ep.send(
                            dc,
                            messages::frame_of(tag::START, &messages::Registers { values: vec![] }),
                        )?;
                    }
                    self.phase = Phase::AwaitDcResults;
                }
                Ok(Step::Continue)
            }
            (Phase::AwaitDcResults, tag::DC_RESULT) => {
                let msg: messages::Registers = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad DC result: {e}")))?;
                if msg.values.len() != self.counters.len() {
                    return Err(NodeError::Protocol("DC result length mismatch".into()));
                }
                self.dc_results.push(msg.values);
                if self.dc_results.len() == self.dc_names.len() {
                    for sk in &self.sk_names {
                        ep.send(
                            sk,
                            messages::frame_of(tag::STOP, &messages::Registers { values: vec![] }),
                        )?;
                    }
                    self.phase = Phase::AwaitSkResults;
                }
                Ok(Step::Continue)
            }
            (Phase::AwaitSkResults, tag::SK_RESULT) => {
                let msg: messages::Registers = env
                    .frame
                    .decode_msg()
                    .map_err(|e| NodeError::Protocol(format!("bad SK result: {e}")))?;
                if msg.values.len() != self.counters.len() {
                    return Err(NodeError::Protocol("SK result length mismatch".into()));
                }
                self.sk_results.push(msg.values);
                if self.sk_results.len() == self.sk_names.len() {
                    self.finalize();
                    return Ok(Step::Done);
                }
                Ok(Step::Continue)
            }
            (_, other) => Err(NodeError::Protocol(format!(
                "TS received message type {other} out of phase"
            ))),
        }
    }

    fn role(&self) -> &'static str {
        "privcount-ts"
    }
}
