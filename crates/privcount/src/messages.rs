//! PrivCount wire messages and their codecs.

use bytes::{BufMut, Bytes, BytesMut};
use pm_crypto::elgamal::HybridCiphertext;
use pm_crypto::group::GroupElement;
use pm_net::frame::{
    get_array32, get_lp_bytes, get_lp_str, get_u32, get_u64, put_lp_bytes, put_lp_str, Frame,
    WireDecode, WireEncode, WireError,
};

/// Message type tags.
pub mod tag {
    /// SK → TS: public key announcement.
    pub const SK_KEY: u16 = 1;
    /// TS → DC: round configuration.
    pub const CONFIGURE: u16 = 2;
    /// DC → TS: encrypted blinding shares for one SK.
    pub const SHARES: u16 = 3;
    /// TS → SK: forwarded encrypted shares.
    pub const SHARES_FWD: u16 = 4;
    /// SK → TS: acknowledgment of absorbed shares.
    pub const SHARES_ACK: u16 = 5;
    /// TS → DC: begin collection.
    pub const START: u16 = 6;
    /// DC → TS: blinded counter registers.
    pub const DC_RESULT: u16 = 7;
    /// TS → SK: end of round; publish share sums.
    pub const STOP: u16 = 8;
    /// SK → TS: share-sum registers.
    pub const SK_RESULT: u16 = 9;
}

/// SK → TS: announces the SK's hybrid-encryption public key.
#[derive(Clone, Debug, PartialEq)]
pub struct SkKey {
    /// The SK's ElGamal public key.
    pub key: GroupElement,
}

impl WireEncode for SkKey {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.key.to_bytes());
    }
}

impl WireDecode for SkKey {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(SkKey {
            key: GroupElement::from_bytes(&get_array32(buf)?),
        })
    }
}

/// TS → DC: the round configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Configure {
    /// Counter names (σ values live in the DC's local schema; names let
    /// the DC sanity-check alignment).
    pub counter_names: Vec<String>,
    /// SK party names and public keys, in share order.
    pub sk_keys: Vec<(String, GroupElement)>,
}

impl WireEncode for Configure {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.counter_names.len() as u32);
        for n in &self.counter_names {
            put_lp_str(buf, n);
        }
        buf.put_u32(self.sk_keys.len() as u32);
        for (name, key) in &self.sk_keys {
            put_lp_str(buf, name);
            buf.put_slice(&key.to_bytes());
        }
    }
}

impl WireDecode for Configure {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = get_u32(buf)? as usize;
        if n > 1_000_000 {
            return Err(WireError::Invalid("too many counters"));
        }
        let mut counter_names = Vec::with_capacity(n);
        for _ in 0..n {
            counter_names.push(get_lp_str(buf)?);
        }
        let k = get_u32(buf)? as usize;
        if k > 1_000 {
            return Err(WireError::Invalid("too many share keepers"));
        }
        let mut sk_keys = Vec::with_capacity(k);
        for _ in 0..k {
            let name = get_lp_str(buf)?;
            let key = GroupElement::from_bytes(&get_array32(buf)?);
            sk_keys.push((name, key));
        }
        Ok(Configure {
            counter_names,
            sk_keys,
        })
    }
}

/// DC → TS (→ SK): hybrid-encrypted blinding shares for one SK.
#[derive(Clone, Debug, PartialEq)]
pub struct EncryptedShares {
    /// Destination SK's party name.
    pub sk_name: String,
    /// Originating DC's party name (filled by the TS when forwarding).
    pub dc_name: String,
    /// Hybrid ciphertext over the `u64` share vector (one per counter).
    pub kem: GroupElement,
    /// Encrypted payload.
    pub payload: Vec<u8>,
}

impl EncryptedShares {
    /// Reconstructs the crypto-layer ciphertext.
    pub fn ciphertext(&self) -> HybridCiphertext {
        HybridCiphertext {
            kem: self.kem,
            payload: self.payload.clone(),
        }
    }
}

impl WireEncode for EncryptedShares {
    fn encode(&self, buf: &mut BytesMut) {
        put_lp_str(buf, &self.sk_name);
        put_lp_str(buf, &self.dc_name);
        buf.put_slice(&self.kem.to_bytes());
        put_lp_bytes(buf, &self.payload);
    }
}

impl WireDecode for EncryptedShares {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(EncryptedShares {
            sk_name: get_lp_str(buf)?,
            dc_name: get_lp_str(buf)?,
            kem: GroupElement::from_bytes(&get_array32(buf)?),
            payload: get_lp_bytes(buf)?.to_vec(),
        })
    }
}

/// A vector of u64 registers (used by DC and SK results).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Registers {
    /// The register values.
    pub values: Vec<u64>,
}

impl WireEncode for Registers {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.values.len() as u32);
        for v in &self.values {
            buf.put_u64(*v);
        }
    }
}

impl WireDecode for Registers {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = get_u32(buf)? as usize;
        if n > 10_000_000 {
            return Err(WireError::Invalid("too many registers"));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(get_u64(buf)?);
        }
        Ok(Registers { values })
    }
}

/// Helper: wraps a message in its tagged frame.
pub fn frame_of<M: WireEncode>(tag: u16, msg: &M) -> Frame {
    Frame::encode_msg(tag, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_crypto::group::GroupParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sk_key_roundtrip() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(1);
        let msg = SkKey {
            key: gp.random_element(&mut rng),
        };
        let frame = frame_of(tag::SK_KEY, &msg);
        assert_eq!(frame.decode_msg::<SkKey>().unwrap(), msg);
    }

    #[test]
    fn configure_roundtrip() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(2);
        let msg = Configure {
            counter_names: vec!["a".into(), "b.c".into()],
            sk_keys: vec![
                ("sk-1".into(), gp.random_element(&mut rng)),
                ("sk-2".into(), gp.random_element(&mut rng)),
            ],
        };
        let frame = frame_of(tag::CONFIGURE, &msg);
        assert_eq!(frame.decode_msg::<Configure>().unwrap(), msg);
    }

    #[test]
    fn shares_roundtrip() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(3);
        let msg = EncryptedShares {
            sk_name: "sk-1".into(),
            dc_name: "dc-3".into(),
            kem: gp.random_element(&mut rng),
            payload: vec![1, 2, 3, 4, 5],
        };
        let frame = frame_of(tag::SHARES, &msg);
        assert_eq!(frame.decode_msg::<EncryptedShares>().unwrap(), msg);
    }

    #[test]
    fn registers_roundtrip() {
        let msg = Registers {
            values: vec![0, u64::MAX, 42],
        };
        let frame = frame_of(tag::DC_RESULT, &msg);
        assert_eq!(frame.decode_msg::<Registers>().unwrap(), msg);
    }

    #[test]
    fn truncated_rejected() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(4);
        let msg = SkKey {
            key: gp.random_element(&mut rng),
        };
        let bytes = msg.to_bytes();
        let mut cut = Bytes::copy_from_slice(&bytes[..16]);
        assert!(SkKey::decode(&mut cut).is_err());
    }
}
