//! Property-based tests for the crypto substrate: ring/field laws on the
//! big integers and modular arithmetic, and semantic invariants of the
//! higher-level primitives.

use pm_crypto::elgamal::{decrypt, encrypt, keygen, mul_ciphertexts, rerandomize};
use pm_crypto::group::GroupParams;
use pm_crypto::modarith::Modulus;
use pm_crypto::secret::{unblind_total, BlindedCounter, ShareAccumulator};
use pm_crypto::sha256::sha256;
use pm_crypto::shuffle::Permutation;
use pm_crypto::u256::U256;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_u256() -> impl Strategy<Value = U256> {
    (any::<[u64; 4]>()).prop_map(U256)
}

proptest! {
    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn add_associates(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!(
            a.wrapping_add(&b).wrapping_add(&c),
            a.wrapping_add(&b.wrapping_add(&c))
        );
    }

    #[test]
    fn sub_inverts_add(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.widening_mul(&b), b.widening_mul(&a));
    }

    #[test]
    fn mul_distributes_low(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        // (a+b)*c == a*c + b*c modulo 2^256 (low halves).
        let lhs = a.wrapping_add(&b).wrapping_mul(&c);
        let rhs = a.wrapping_mul(&c).wrapping_add(&b.wrapping_mul(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn shift_roundtrip(a in arb_u256(), n in 0u32..255) {
        // Right shift then left shift clears low bits only.
        let masked = a.shr(n).shl(n);
        let reference = a.shr(n).shl(n);
        prop_assert_eq!(masked, reference);
        // shl then shr restores when no high bits lost.
        let small = a.shr(128);
        prop_assert_eq!(small.shl(64).shr(64), small);
    }

    #[test]
    fn mod_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = (1u64 << 61) - 1;
        let m = Modulus::new(U256::from_u64(p));
        let ar = a % p;
        let br = b % p;
        let expect = ((ar as u128 * br as u128) % p as u128) as u64;
        prop_assert_eq!(
            m.mul(&U256::from_u64(ar), &U256::from_u64(br)).low_u64(),
            expect
        );
    }

    #[test]
    fn mod_reduce_idempotent(a in arb_u256()) {
        let gp = GroupParams::default_params();
        let m = Modulus::new(*gp.p());
        let r = m.reduce(&a);
        prop_assert!(r < *gp.p());
        prop_assert_eq!(m.reduce(&r), r);
    }

    #[test]
    fn sha256_deterministic_and_length(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let d1 = sha256(&data);
        let d2 = sha256(&data);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(d1.len(), 32);
    }

    #[test]
    fn permutation_inverse_roundtrip(seed in any::<u64>(), n in 1usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(n, &mut rng);
        prop_assert!(p.is_valid());
        let items: Vec<usize> = (0..n).collect();
        prop_assert_eq!(p.inverse().apply(&p.apply(&items)), items);
    }

    #[test]
    fn blinding_recovers_value(
        seed in any::<u64>(),
        initial in any::<i32>(),
        incrs in proptest::collection::vec(any::<i32>(), 0..16),
        num_sks in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut reg, shares) = BlindedCounter::blind(initial as i64, num_sks, &mut rng);
        let mut accs = vec![ShareAccumulator::default(); num_sks];
        for (k, s) in shares.into_iter().enumerate() {
            accs[k].absorb(s);
        }
        let mut truth = initial as i64;
        for i in &incrs {
            reg.increment(*i as i64);
            truth += *i as i64;
        }
        let sk_vals: Vec<u64> = accs.iter().map(|a| a.publish()).collect();
        prop_assert_eq!(unblind_total(&[reg.publish()], &sk_vals), truth);
    }
}

// ElGamal semantic properties use fewer cases (each involves several
// 256-bit exponentiations).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn elgamal_roundtrip_and_homomorphism(seed in any::<u64>()) {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = keygen(&gp, &mut rng);
        let m1 = gp.random_element(&mut rng);
        let m2 = gp.random_element(&mut rng);
        let c1 = encrypt(&gp, &kp.public, &m1, &mut rng);
        let c2 = encrypt(&gp, &kp.public, &m2, &mut rng);
        prop_assert_eq!(decrypt(&gp, &kp.secret, &c1), m1);
        let prod = mul_ciphertexts(&gp, &c1, &c2);
        prop_assert_eq!(decrypt(&gp, &kp.secret, &prod), gp.mul(&m1, &m2));
        let rr = rerandomize(&gp, &kp.public, &c1, &mut rng);
        prop_assert_eq!(decrypt(&gp, &kp.secret, &rr), m1);
    }

    #[test]
    fn group_exponent_laws(seed in any::<u64>()) {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = gp.random_scalar(&mut rng);
        let y = gp.random_scalar(&mut rng);
        prop_assert_eq!(
            gp.g_pow(&gp.scalar_add(&x, &y)),
            gp.mul(&gp.g_pow(&x), &gp.g_pow(&y))
        );
        prop_assert_eq!(
            gp.pow(&gp.g_pow(&x), &y),
            gp.g_pow(&gp.scalar_mul(&x, &y))
        );
    }
}
