//! Modular arithmetic over 256-bit odd moduli.
//!
//! [`Modulus`] packages a modulus with precomputed Montgomery constants and
//! provides constant-flow-friendly add/sub/mul/pow/inv plus Miller–Rabin
//! primality testing. All group and field operations in this crate are
//! built on it.

use crate::u256::U256;
use rand::Rng;

/// An odd 256-bit modulus with precomputed Montgomery parameters.
///
/// Values passed to the arithmetic methods must already be reduced
/// (`< modulus`); this is debug-asserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Modulus {
    /// The modulus `m` (odd, > 1).
    m: U256,
    /// `-m^{-1} mod 2^64`, for Montgomery reduction.
    n0inv: u64,
    /// `2^512 mod m`, used to convert into Montgomery form.
    r2: U256,
    /// `2^256 mod m` (the Montgomery representation of 1).
    r1: U256,
}

impl Modulus {
    /// Creates a modulus context. Panics if `m` is even or < 3.
    pub fn new(m: U256) -> Modulus {
        assert!(m.is_odd(), "Montgomery arithmetic requires an odd modulus");
        assert!(m > U256::ONE, "modulus must be > 1");
        let n0inv = inv64(m.low_u64()).wrapping_neg();
        // r1 = 2^256 mod m by repeated doubling of (2^255 mod m)-ish path:
        // start from 1, double 256 times with reduction.
        let mut r1 = one_mod(&m);
        for _ in 0..256 {
            r1 = double_mod(&r1, &m);
        }
        // r2 = 2^512 mod m: double r1 another 256 times.
        let mut r2 = r1;
        for _ in 0..256 {
            r2 = double_mod(&r2, &m);
        }
        Modulus { m, n0inv, r2, r1 }
    }

    /// The raw modulus value.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// `(a + b) mod m` for reduced inputs.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        debug_assert!(a < &self.m && b < &self.m);
        let (sum, carry) = a.overflowing_add(b);
        if carry || sum >= self.m {
            sum.wrapping_sub(&self.m)
        } else {
            sum
        }
    }

    /// `(a - b) mod m` for reduced inputs.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        debug_assert!(a < &self.m && b < &self.m);
        let (diff, borrow) = a.overflowing_sub(b);
        if borrow {
            diff.wrapping_add(&self.m)
        } else {
            diff
        }
    }

    /// `-a mod m` for a reduced input.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.wrapping_sub(a)
        }
    }

    /// Montgomery product `a * b * 2^-256 mod m` (CIOS).
    fn montmul(&self, a: &U256, b: &U256) -> U256 {
        let mut t = [0u64; 6]; // 4 limbs + 2 overflow words
        #[allow(clippy::needless_range_loop)] // limb arithmetic reads clearest indexed
        for i in 0..4 {
            // t += a[i] * b
            let mut carry: u64 = 0;
            for j in 0..4 {
                let acc = t[j] as u128 + (a.0[i] as u128) * (b.0[j] as u128) + carry as u128;
                t[j] = acc as u64;
                carry = (acc >> 64) as u64;
            }
            let acc = t[4] as u128 + carry as u128;
            t[4] = acc as u64;
            t[5] = (acc >> 64) as u64;

            // m_i = t[0] * n0inv mod 2^64; t += m_i * m; t >>= 64
            let mi = t[0].wrapping_mul(self.n0inv);
            let acc = t[0] as u128 + (mi as u128) * (self.m.0[0] as u128);
            let mut carry = (acc >> 64) as u64;
            for j in 1..4 {
                let acc = t[j] as u128 + (mi as u128) * (self.m.0[j] as u128) + carry as u128;
                t[j - 1] = acc as u64;
                carry = (acc >> 64) as u64;
            }
            let acc = t[4] as u128 + carry as u128;
            t[3] = acc as u64;
            let acc2 = t[5] as u128 + (acc >> 64);
            t[4] = acc2 as u64;
            t[5] = (acc2 >> 64) as u64;
        }
        let mut out = U256([t[0], t[1], t[2], t[3]]);
        if t[4] != 0 || out >= self.m {
            out = out.wrapping_sub(&self.m);
        }
        out
    }

    /// `a * b mod m` for reduced inputs.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        debug_assert!(a < &self.m && b < &self.m);
        let am = self.montmul(a, &self.r2); // to Montgomery form
        let abm = self.montmul(&am, b); // a*b*R*R^-1 = a*b ... still * 1
        abm
    }

    /// `a^2 mod m`.
    pub fn sqr(&self, a: &U256) -> U256 {
        self.mul(a, a)
    }

    /// `base^exp mod m` via left-to-right binary exponentiation in
    /// Montgomery form.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        debug_assert!(base < &self.m);
        if exp.is_zero() {
            return one_mod(&self.m);
        }
        let bm = self.montmul(base, &self.r2);
        let mut acc = self.r1; // Montgomery form of 1
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            acc = self.montmul(&acc, &acc);
            if exp.bit(i) {
                acc = self.montmul(&acc, &bm);
            }
        }
        self.montmul(&acc, &U256::ONE) // out of Montgomery form
    }

    /// Reduces an arbitrary `U256` modulo `m` (binary reduction; fine for
    /// occasional use such as hash-to-scalar).
    pub fn reduce(&self, x: &U256) -> U256 {
        if x < &self.m {
            return *x;
        }
        // Find the shift aligning m's MSB with x's, then subtract down.
        let mut r = *x;
        let mb = self.m.bits();
        loop {
            let rb = r.bits();
            if r < self.m {
                return r;
            }
            let sh = rb - mb;
            let mut t = self.m.shl(sh);
            if t > r {
                t = self.m.shl(sh - 1);
            }
            r = r.wrapping_sub(&t);
        }
    }

    /// Reduces a 512-bit value `(lo, hi)` modulo `m` using Montgomery
    /// arithmetic: `x mod m = montmul(lo, R2)·R^-1... ` computed as
    /// `lo mod m + hi·(2^256 mod m)`.
    pub fn reduce_wide(&self, lo: &U256, hi: &U256) -> U256 {
        let lo_r = self.reduce(lo);
        let hi_r = self.reduce(hi);
        // hi * 2^256 mod m = montmul(hi, r2) since montmul multiplies by R^-1:
        // montmul(hi, r2) = hi * 2^512 * 2^-256 = hi * 2^256 mod m.
        let hi_shift = self.montmul(&hi_r, &self.r2);
        self.add(&lo_r, &hi_shift)
    }

    /// Modular inverse via Fermat's little theorem (`m` must be prime).
    pub fn inv_prime(&self, a: &U256) -> U256 {
        debug_assert!(!a.is_zero(), "inverse of zero");
        let e = self.m.wrapping_sub(&U256::from_u64(2));
        self.pow(a, &e)
    }

    /// Samples a uniformly random value in `[0, m)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> U256 {
        let bits = self.m.bits();
        let top_limbs = bits.div_ceil(64) as usize;
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut limbs = [0u64; 4];
            for l in limbs.iter_mut().take(top_limbs) {
                *l = rng.gen();
            }
            limbs[top_limbs - 1] &= top_mask;
            let v = U256(limbs);
            if v < self.m {
                return v;
            }
        }
    }

    /// Samples a uniformly random value in `[1, m)`.
    pub fn sample_nonzero<R: Rng + ?Sized>(&self, rng: &mut R) -> U256 {
        loop {
            let v = self.sample(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

/// `1 mod m` (handles m == 1 defensively).
fn one_mod(m: &U256) -> U256 {
    if *m == U256::ONE {
        U256::ZERO
    } else {
        U256::ONE
    }
}

/// `(2a) mod m` for reduced `a`.
fn double_mod(a: &U256, m: &U256) -> U256 {
    let (d, carry) = a.overflowing_add(a);
    if carry || d >= *m {
        d.wrapping_sub(m)
    } else {
        d
    }
}

/// Inverse of an odd `x` modulo `2^64` by Newton iteration.
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

/// Deterministic Miller–Rabin primality test.
///
/// Uses `rounds` random bases plus the fixed bases 2 and 3; for the sizes
/// used here (≤256-bit), 40 random rounds gives error probability
/// ≤ 4^-40.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &U256, rounds: u32, rng: &mut R) -> bool {
    if *n < U256::from_u64(2) {
        return false;
    }
    for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let sm = U256::from_u64(small);
        if *n == sm {
            return true;
        }
        if div_rem_u64(n, small) == 0 {
            return false;
        }
    }
    let modn = Modulus::new(*n);
    let n_minus_1 = n.wrapping_sub(&U256::ONE);
    // n - 1 = d * 2^s with d odd
    let mut s = 0u32;
    let mut d = n_minus_1;
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }
    let check = |a: U256| -> bool {
        // true if n passes the round for base a
        if a.is_zero() || a == n_minus_1 || a == U256::ONE {
            return true;
        }
        let mut x = modn.pow(&a, &d);
        if x == U256::ONE || x == n_minus_1 {
            return true;
        }
        for _ in 1..s {
            x = modn.sqr(&x);
            if x == n_minus_1 {
                return true;
            }
            if x == U256::ONE {
                return false;
            }
        }
        false
    };
    if !check(U256::from_u64(2)) || !check(U256::from_u64(3)) {
        return false;
    }
    for _ in 0..rounds {
        let a = modn.sample_nonzero(rng);
        if !check(a) {
            return false;
        }
    }
    true
}

/// Remainder of `n` divided by a small `u64` divisor.
pub fn div_rem_u64(n: &U256, d: u64) -> u64 {
    debug_assert!(d != 0);
    let mut rem: u128 = 0;
    for i in (0..4).rev() {
        rem = ((rem << 64) | n.0[i] as u128) % d as u128;
    }
    rem as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m_small() -> Modulus {
        // 2^61 - 1, a Mersenne prime, easy to check against u128 math.
        Modulus::new(U256::from_u64((1u64 << 61) - 1))
    }

    #[test]
    fn add_sub_mod() {
        let m = m_small();
        let p = (1u64 << 61) - 1;
        let a = U256::from_u64(p - 3);
        let b = U256::from_u64(7);
        assert_eq!(m.add(&a, &b).low_u64(), 4);
        assert_eq!(m.sub(&b, &a).low_u64(), 10);
        assert_eq!(m.neg(&b).low_u64(), p - 7);
        assert_eq!(m.neg(&U256::ZERO), U256::ZERO);
    }

    #[test]
    fn mul_matches_u128() {
        let m = m_small();
        let p = (1u64 << 61) - 1;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a: u64 = rng.gen_range(0..p);
            let b: u64 = rng.gen_range(0..p);
            let expect = ((a as u128 * b as u128) % p as u128) as u64;
            assert_eq!(
                m.mul(&U256::from_u64(a), &U256::from_u64(b)).low_u64(),
                expect
            );
        }
    }

    #[test]
    fn pow_matches_u128() {
        let m = m_small();
        let p = (1u64 << 61) - 1;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let a: u64 = rng.gen_range(1..p);
            let e: u64 = rng.gen_range(0..1 << 20);
            let mut expect: u128 = 1;
            let mut base = a as u128;
            let mut k = e;
            while k > 0 {
                if k & 1 == 1 {
                    expect = expect * base % p as u128;
                }
                base = base * base % p as u128;
                k >>= 1;
            }
            assert_eq!(
                m.pow(&U256::from_u64(a), &U256::from_u64(e)).low_u64(),
                expect as u64
            );
        }
    }

    #[test]
    fn pow_edge_cases() {
        let m = m_small();
        assert_eq!(m.pow(&U256::from_u64(5), &U256::ZERO), U256::ONE);
        assert_eq!(m.pow(&U256::ZERO, &U256::from_u64(5)), U256::ZERO);
        // Fermat: a^(p-1) = 1
        let e = m.modulus().wrapping_sub(&U256::ONE);
        assert_eq!(m.pow(&U256::from_u64(123456), &e), U256::ONE);
    }

    #[test]
    fn inverse() {
        let m = m_small();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let a = m.sample_nonzero(&mut rng);
            let inv = m.inv_prime(&a);
            assert_eq!(m.mul(&a, &inv), U256::ONE);
        }
    }

    #[test]
    fn reduce_wide_matches() {
        // (a*b) mod m computed two ways
        let m = m_small();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let a = U256([rng.gen(), rng.gen(), rng.gen(), rng.gen()]);
            let b = U256([rng.gen(), rng.gen(), rng.gen(), rng.gen()]);
            let (lo, hi) = a.widening_mul(&b);
            let direct = m.mul(&m.reduce(&a), &m.reduce(&b));
            assert_eq!(m.reduce_wide(&lo, &hi), direct);
        }
    }

    #[test]
    fn miller_rabin_knowns() {
        let mut rng = StdRng::seed_from_u64(11);
        for p in [2u64, 3, 5, 7, 61, 89, 127, 8191, 131071, 524287, 2147483647] {
            assert!(
                is_probable_prime(&U256::from_u64(p), 16, &mut rng),
                "{p} is prime"
            );
        }
        for c in [
            1u64, 4, 6, 9, 15, 21, 25, 341, 561, 645, 1105, 1729, 2465, 2821, 6601,
        ] {
            assert!(
                !is_probable_prime(&U256::from_u64(c), 16, &mut rng),
                "{c} is composite"
            );
        }
        // 2^61 - 1 is prime; 2^67 - 1 = 193707721 * 761838257287 is not.
        assert!(is_probable_prime(
            &U256::from_u64((1 << 61) - 1),
            16,
            &mut rng
        ));
        let c67 = U256::from_u128((1u128 << 67) - 1);
        assert!(!is_probable_prime(&c67, 16, &mut rng));
    }

    #[test]
    fn div_rem_u64_works() {
        assert_eq!(div_rem_u64(&U256::from_u64(100), 7), 2);
        let big = U256::MAX;
        // 2^256 - 1 mod 3: 2^256 ≡ 1 (mod 3), so 2^256-1 ≡ 0.
        assert_eq!(div_rem_u64(&big, 3), 0);
        // 2^256 - 1 mod 5: 2^256 = (2^4)^64 ≡ 1, so ≡ 0.
        assert_eq!(div_rem_u64(&big, 5), 0);
    }

    #[test]
    fn sample_in_range() {
        let m = m_small();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let v = m.sample(&mut rng);
            assert!(v < *m.modulus());
        }
    }
}
