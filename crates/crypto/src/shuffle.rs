//! Rerandomizing verifiable shuffle (mix step) for ElGamal ciphertext
//! vectors, with a cut-and-choose zero-knowledge argument.
//!
//! Each PSC computation party permutes and rerandomizes the counter
//! vector so that no party can link output cells to input cells. The
//! proof convinces a verifier that the output is *some* permutation and
//! rerandomization of the input without revealing which: the prover
//! publishes `t` independent "shadow" shuffles and, per Fiat–Shamir
//! challenge bit, opens either (input → shadow) or (shadow → output).
//! Each opened side is a uniformly random permutation, so nothing leaks;
//! a cheating prover survives each round with probability 1/2, giving
//! soundness error `2^-t`.

use crate::elgamal::{rerandomize_with, Ciphertext, PublicKey};
use crate::group::{GroupParams, Scalar};
use crate::zkp::Transcript;
use rand::Rng;

/// A permutation of `0..n`, stored as the image vector: output slot `i`
/// draws from input slot `perm[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation(pub Vec<usize>);

impl Permutation {
    /// The identity permutation on `n` items.
    pub fn identity(n: usize) -> Permutation {
        Permutation((0..n).collect())
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Permutation {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        Permutation(v)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Applies the permutation: `out[i] = items[perm[i]]`.
    pub fn apply<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.0.len());
        self.0.iter().map(|&j| items[j].clone()).collect()
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.0.len()];
        for (i, &j) in self.0.iter().enumerate() {
            inv[j] = i;
        }
        Permutation(inv)
    }

    /// Composition `self ∘ other`: applying the result equals applying
    /// `other` first, then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        Permutation(self.0.iter().map(|&j| other.0[j]).collect())
    }

    /// Validates that this is a permutation of `0..n`.
    pub fn is_valid(&self) -> bool {
        let n = self.0.len();
        let mut seen = vec![false; n];
        for &j in &self.0 {
            if j >= n || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        true
    }
}

/// The prover's secret for one shuffle: permutation + rerandomizers.
#[derive(Clone, Debug)]
pub struct ShuffleWitness {
    /// Output slot `i` draws from input slot `perm.0[i]`…
    pub perm: Permutation,
    /// …and was rerandomized with `rerand[i]`.
    pub rerand: Vec<Scalar>,
}

/// Shuffles (permutes + rerandomizes) a ciphertext vector, returning the
/// output and the witness.
pub fn shuffle<R: Rng + ?Sized>(
    gp: &GroupParams,
    y: &PublicKey,
    input: &[Ciphertext],
    rng: &mut R,
) -> (Vec<Ciphertext>, ShuffleWitness) {
    let n = input.len();
    let perm = Permutation::random(n, rng);
    let rerand: Vec<Scalar> = (0..n).map(|_| gp.random_scalar(rng)).collect();
    let output = apply_shuffle(gp, y, input, &perm, &rerand);
    (output, ShuffleWitness { perm, rerand })
}

/// Applies a known permutation + rerandomization.
pub fn apply_shuffle(
    gp: &GroupParams,
    y: &PublicKey,
    input: &[Ciphertext],
    perm: &Permutation,
    rerand: &[Scalar],
) -> Vec<Ciphertext> {
    assert_eq!(input.len(), perm.len());
    assert_eq!(input.len(), rerand.len());
    (0..input.len())
        .map(|i| rerandomize_with(gp, y, &input[perm.0[i]], &rerand[i]))
        .collect()
}

/// One round of the cut-and-choose argument: either the (input→shadow)
/// opening or the (shadow→output) opening.
#[derive(Clone, Debug)]
pub enum RoundOpening {
    /// Challenge bit 0: reveal how the shadow was derived from the input.
    InputToShadow {
        /// Shadow permutation.
        perm: Permutation,
        /// Shadow rerandomizers.
        rerand: Vec<Scalar>,
    },
    /// Challenge bit 1: reveal how the output is derived from the shadow.
    ShadowToOutput {
        /// Composed permutation (real ∘ shadow⁻¹-side); uniformly random.
        perm: Permutation,
        /// Difference rerandomizers.
        rerand: Vec<Scalar>,
    },
}

/// A non-interactive cut-and-choose shuffle argument with `t` rounds.
#[derive(Clone, Debug)]
pub struct ShuffleProof {
    /// The shadow shuffle outputs, one per round.
    pub shadows: Vec<Vec<Ciphertext>>,
    /// Per-round openings as dictated by the Fiat–Shamir challenge.
    pub openings: Vec<RoundOpening>,
}

fn absorb_vector(t: &mut Transcript, label: &[u8], cts: &[Ciphertext]) {
    t.append(label, &(cts.len() as u64).to_be_bytes());
    for ct in cts {
        t.append_element(b"ct.a", &ct.a);
        t.append_element(b"ct.b", &ct.b);
    }
}

impl ShuffleProof {
    /// Proves that `output` is a shuffle of `input` under witness `w`.
    ///
    /// `rounds` is the soundness parameter `t` (error `2^-t`).
    pub fn prove<R: Rng + ?Sized>(
        gp: &GroupParams,
        y: &PublicKey,
        input: &[Ciphertext],
        output: &[Ciphertext],
        w: &ShuffleWitness,
        rounds: usize,
        rng: &mut R,
    ) -> ShuffleProof {
        // Generate shadows.
        let mut shadow_witnesses = Vec::with_capacity(rounds);
        let mut shadows = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let (shadow, sw) = shuffle(gp, y, input, rng);
            shadows.push(shadow);
            shadow_witnesses.push(sw);
        }
        Self::from_parts(gp, y, input, output, w, shadow_witnesses, shadows)
    }

    /// Assembles the argument from pre-generated shadow shuffles.
    ///
    /// `shadows[r]` must be the shuffle of `input` under
    /// `shadow_witnesses[r]`. PSC's batched mixing computes the shadows
    /// concurrently (their witnesses drawn sequentially up front) and
    /// finishes here; the proof is bit-identical to
    /// [`ShuffleProof::prove`] fed the same witnesses. The Fiat–Shamir
    /// challenge and the openings draw no randomness.
    pub fn from_parts(
        gp: &GroupParams,
        y: &PublicKey,
        input: &[Ciphertext],
        output: &[Ciphertext],
        w: &ShuffleWitness,
        shadow_witnesses: Vec<ShuffleWitness>,
        shadows: Vec<Vec<Ciphertext>>,
    ) -> ShuffleProof {
        let n = input.len();
        debug_assert_eq!(output.len(), n);
        let rounds = shadows.len();
        debug_assert_eq!(shadow_witnesses.len(), rounds);
        // Fiat–Shamir challenge over (input, output, shadows).
        let mut tr = Transcript::new(b"pm-crypto/shuffle-proof/v1");
        tr.append_element(b"pk", &y.0);
        absorb_vector(&mut tr, b"input", input);
        absorb_vector(&mut tr, b"output", output);
        for s in &shadows {
            absorb_vector(&mut tr, b"shadow", s);
        }
        let challenge = tr.challenge_bits(b"rounds", rounds);

        let mut openings = Vec::with_capacity(rounds);
        for (sw, bit) in shadow_witnesses.into_iter().zip(challenge) {
            if !bit {
                openings.push(RoundOpening::InputToShadow {
                    perm: sw.perm,
                    rerand: sw.rerand,
                });
            } else {
                // Output slot i holds input[w.perm[i]] rerandomized by
                // w.rerand[i]. Shadow slot k holds input[sw.perm[k]]
                // rerandomized by sw.rerand[k]. So output slot i equals
                // shadow slot k(i) = sw.perm⁻¹(w.perm[i]) rerandomized by
                // w.rerand[i] - sw.rerand[k(i)].
                let sw_inv = sw.perm.inverse();
                let comp = Permutation((0..n).map(|i| sw_inv.0[w.perm.0[i]]).collect());
                let rerand: Vec<Scalar> = (0..n)
                    .map(|i| gp.scalar_sub(&w.rerand[i], &sw.rerand[comp.0[i]]))
                    .collect();
                openings.push(RoundOpening::ShadowToOutput { perm: comp, rerand });
            }
        }
        ShuffleProof { shadows, openings }
    }

    /// Verifies the argument.
    pub fn verify(
        &self,
        gp: &GroupParams,
        y: &PublicKey,
        input: &[Ciphertext],
        output: &[Ciphertext],
    ) -> bool {
        let n = input.len();
        if output.len() != n || self.shadows.len() != self.openings.len() {
            return false;
        }
        let rounds = self.shadows.len();
        let mut tr = Transcript::new(b"pm-crypto/shuffle-proof/v1");
        tr.append_element(b"pk", &y.0);
        absorb_vector(&mut tr, b"input", input);
        absorb_vector(&mut tr, b"output", output);
        for s in &self.shadows {
            if s.len() != n {
                return false;
            }
            absorb_vector(&mut tr, b"shadow", s);
        }
        let challenge = tr.challenge_bits(b"rounds", rounds);

        for ((shadow, opening), bit) in self.shadows.iter().zip(&self.openings).zip(challenge) {
            match (bit, opening) {
                (false, RoundOpening::InputToShadow { perm, rerand }) => {
                    if perm.len() != n || rerand.len() != n || !perm.is_valid() {
                        return false;
                    }
                    let expect = apply_shuffle(gp, y, input, perm, rerand);
                    if &expect != shadow {
                        return false;
                    }
                }
                (true, RoundOpening::ShadowToOutput { perm, rerand }) => {
                    if perm.len() != n || rerand.len() != n || !perm.is_valid() {
                        return false;
                    }
                    let expect = apply_shuffle(gp, y, shadow, perm, rerand);
                    if expect != output {
                        return false;
                    }
                }
                // Opening type does not match the challenge bit.
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{decrypt, encrypt, keygen};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn permutation_laws() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Permutation::random(20, &mut rng);
        assert!(p.is_valid());
        let inv = p.inverse();
        assert_eq!(p.compose(&inv), Permutation::identity(20));
        assert_eq!(inv.compose(&p), Permutation::identity(20));
        let items: Vec<u32> = (0..20).collect();
        assert_eq!(inv.apply(&p.apply(&items)), items);
    }

    #[test]
    fn permutation_apply_convention() {
        // out[i] = items[perm[i]]
        let p = Permutation(vec![2, 0, 1]);
        assert_eq!(p.apply(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
        // compose: apply other first, then self.
        let q = Permutation(vec![1, 2, 0]);
        let pq = p.compose(&q);
        let direct = p.apply(&q.apply(&['a', 'b', 'c']));
        assert_eq!(pq.apply(&['a', 'b', 'c']), direct);
    }

    #[test]
    fn invalid_permutations_detected() {
        assert!(!Permutation(vec![0, 0, 1]).is_valid());
        assert!(!Permutation(vec![0, 3, 1]).is_valid());
        assert!(Permutation(vec![]).is_valid());
    }

    #[test]
    fn shuffle_preserves_multiset_of_plaintexts() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(2);
        let kp = keygen(&gp, &mut rng);
        let msgs: Vec<_> = (0..8).map(|_| gp.random_element(&mut rng)).collect();
        let cts: Vec<_> = msgs
            .iter()
            .map(|m| encrypt(&gp, &kp.public, m, &mut rng))
            .collect();
        let (out, w) = shuffle(&gp, &kp.public, &cts, &mut rng);
        let mut decrypted: Vec<_> = out.iter().map(|c| decrypt(&gp, &kp.secret, c)).collect();
        let mut expected = msgs.clone();
        decrypted.sort_by_key(|e| e.to_bytes());
        expected.sort_by_key(|e| e.to_bytes());
        assert_eq!(decrypted, expected);
        // And the permutation is what the witness says.
        for i in 0..cts.len() {
            assert_eq!(decrypt(&gp, &kp.secret, &out[i]), msgs[w.perm.0[i]]);
        }
    }

    #[test]
    fn proof_accepts_honest_shuffle() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(3);
        let kp = keygen(&gp, &mut rng);
        let cts: Vec<_> = (0..6)
            .map(|_| {
                let m = gp.random_element(&mut rng);
                encrypt(&gp, &kp.public, &m, &mut rng)
            })
            .collect();
        let (out, w) = shuffle(&gp, &kp.public, &cts, &mut rng);
        let proof = ShuffleProof::prove(&gp, &kp.public, &cts, &out, &w, 12, &mut rng);
        assert!(proof.verify(&gp, &kp.public, &cts, &out));
    }

    #[test]
    fn proof_rejects_tampered_output() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(4);
        let kp = keygen(&gp, &mut rng);
        let cts: Vec<_> = (0..5)
            .map(|_| {
                let m = gp.random_element(&mut rng);
                encrypt(&gp, &kp.public, &m, &mut rng)
            })
            .collect();
        let (mut out, w) = shuffle(&gp, &kp.public, &cts, &mut rng);
        let proof = ShuffleProof::prove(&gp, &kp.public, &cts, &out, &w, 12, &mut rng);
        // Swap a plaintext after proving: the proof must not verify.
        let m = gp.random_element(&mut rng);
        out[0] = encrypt(&gp, &kp.public, &m, &mut rng);
        assert!(!proof.verify(&gp, &kp.public, &cts, &out));
    }

    #[test]
    fn proof_rejects_replaced_cell_at_prove_time() {
        // A prover who *replaces* a ciphertext (rather than shuffling)
        // should fail verification with overwhelming probability.
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(5);
        let kp = keygen(&gp, &mut rng);
        let cts: Vec<_> = (0..4)
            .map(|_| {
                let m = gp.random_element(&mut rng);
                encrypt(&gp, &kp.public, &m, &mut rng)
            })
            .collect();
        let (mut out, w) = shuffle(&gp, &kp.public, &cts, &mut rng);
        let m = gp.random_element(&mut rng);
        out[2] = encrypt(&gp, &kp.public, &m, &mut rng);
        // The witness no longer describes `out`; an honest prover API can
        // still be abused to produce a proof attempt, which must fail.
        let proof = ShuffleProof::prove(&gp, &kp.public, &cts, &out, &w, 16, &mut rng);
        assert!(!proof.verify(&gp, &kp.public, &cts, &out));
    }

    #[test]
    fn proof_rejects_wrong_input_binding() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(6);
        let kp = keygen(&gp, &mut rng);
        let cts: Vec<_> = (0..4)
            .map(|_| {
                let m = gp.random_element(&mut rng);
                encrypt(&gp, &kp.public, &m, &mut rng)
            })
            .collect();
        let (out, w) = shuffle(&gp, &kp.public, &cts, &mut rng);
        let proof = ShuffleProof::prove(&gp, &kp.public, &cts, &out, &w, 12, &mut rng);
        // Verifying against different input fails.
        let other: Vec<_> = (0..4)
            .map(|_| {
                let m = gp.random_element(&mut rng);
                encrypt(&gp, &kp.public, &m, &mut rng)
            })
            .collect();
        assert!(!proof.verify(&gp, &kp.public, &other, &out));
    }

    #[test]
    fn empty_vector_shuffle() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(7);
        let kp = keygen(&gp, &mut rng);
        let (out, w) = shuffle(&gp, &kp.public, &[], &mut rng);
        assert!(out.is_empty());
        let proof = ShuffleProof::prove(&gp, &kp.public, &[], &out, &w, 4, &mut rng);
        assert!(proof.verify(&gp, &kp.public, &[], &out));
    }
}
