//! Schnorr group: the prime-order-`q` subgroup of `Z_p^*` for a safe
//! prime `p = 2q + 1`.
//!
//! Group elements are quadratic residues mod `p`; exponents live in
//! `Z_q`. [`GroupParams`] bundles both moduli and the generator and is the
//! handle through which all group operations are performed (elements and
//! scalars are inert data).

use crate::modarith::{is_probable_prime, Modulus};
use crate::sha256::sha256_concat;
use crate::u256::U256;
use rand::Rng;

/// An element of the order-`q` subgroup of `Z_p^*` (a quadratic residue).
///
/// Elements are produced and consumed by [`GroupParams`] methods; the raw
/// value is exposed for serialization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupElement(pub U256);

/// An exponent in `Z_q`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scalar(pub U256);

/// Schnorr group parameters: safe prime `p = 2q + 1`, subgroup order `q`,
/// generator `g` of the order-`q` subgroup.
#[derive(Clone, Copy, Debug)]
pub struct GroupParams {
    p: Modulus,
    q: Modulus,
    g: GroupElement,
}

/// The shipped 256-bit demo parameter set (see crate-level security
/// disclaimer). Found by [`GroupParams::generate`]-equivalent search and
/// re-verified by unit tests.
pub const P_HEX: &str = "c2439cbcc58815e040399147572be16ffa35ecf9ae875e83f2442af7f86ef7fb";
/// Subgroup order for [`P_HEX`]: `q = (p - 1) / 2`.
pub const Q_HEX: &str = "6121ce5e62c40af0201cc8a3ab95f0b7fd1af67cd743af41f922157bfc377bfd";
/// Generator of the order-`q` subgroup for [`P_HEX`].
pub const G_HEX: &str = "4";

impl GroupParams {
    /// Returns the shipped 256-bit parameter set.
    pub fn default_params() -> GroupParams {
        let p = U256::from_hex(P_HEX).expect("valid hex");
        let q = U256::from_hex(Q_HEX).expect("valid hex");
        let g = U256::from_hex(G_HEX).expect("valid hex");
        GroupParams {
            p: Modulus::new(p),
            q: Modulus::new(q),
            g: GroupElement(g),
        }
    }

    /// Generates fresh parameters: a random safe prime with `bits`
    /// significant bits (`bits` ≤ 256) and the generator `h^2` for the
    /// smallest suitable `h`. Slow (safe primes are sparse); used for
    /// parameter rotation, not per-run setup.
    pub fn generate<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> GroupParams {
        assert!((16..=256).contains(&bits), "bits must be in [16, 256]");
        loop {
            // Random (bits-1)-bit odd q with top bit set.
            let qbits = bits - 1;
            let mut limbs = [0u64; 4];
            let top_limb = ((qbits - 1) / 64) as usize;
            for l in limbs.iter_mut().take(top_limb + 1) {
                *l = rng.gen();
            }
            let top_bit = (qbits - 1) % 64;
            limbs[top_limb] &= (1u64 << top_bit) | ((1u64 << top_bit) - 1);
            limbs[top_limb] |= 1u64 << top_bit;
            for l in limbs.iter_mut().skip(top_limb + 1) {
                *l = 0;
            }
            limbs[0] |= 1;
            let q = U256(limbs);
            if !is_probable_prime(&q, 2, rng) {
                continue;
            }
            let p = q.shl(1).wrapping_add(&U256::ONE);
            if !is_probable_prime(&p, 2, rng) {
                continue;
            }
            if !is_probable_prime(&q, 40, rng) || !is_probable_prime(&p, 40, rng) {
                continue;
            }
            let pm = Modulus::new(p);
            let mut g = U256::from_u64(4);
            for h in 2u64.. {
                let cand = pm.mul(&U256::from_u64(h), &U256::from_u64(h));
                if cand != U256::ONE {
                    g = cand;
                    break;
                }
            }
            return GroupParams {
                p: pm,
                q: Modulus::new(q),
                g: GroupElement(g),
            };
        }
    }

    /// The generator.
    pub fn generator(&self) -> GroupElement {
        self.g
    }

    /// The identity element.
    pub fn identity(&self) -> GroupElement {
        GroupElement(U256::ONE)
    }

    /// Prime modulus `p`.
    pub fn p(&self) -> &U256 {
        self.p.modulus()
    }

    /// Subgroup order `q`.
    pub fn q(&self) -> &U256 {
        self.q.modulus()
    }

    /// Group operation: `a * b mod p`.
    pub fn mul(&self, a: &GroupElement, b: &GroupElement) -> GroupElement {
        GroupElement(self.p.mul(&a.0, &b.0))
    }

    /// Inverse element: `a^-1 mod p`.
    pub fn inv(&self, a: &GroupElement) -> GroupElement {
        GroupElement(self.p.inv_prime(&a.0))
    }

    /// `a / b` in the group.
    pub fn div(&self, a: &GroupElement, b: &GroupElement) -> GroupElement {
        self.mul(a, &self.inv(b))
    }

    /// Exponentiation `base^e mod p`.
    pub fn pow(&self, base: &GroupElement, e: &Scalar) -> GroupElement {
        GroupElement(self.p.pow(&base.0, &e.0))
    }

    /// `g^e`, the most common exponentiation.
    pub fn g_pow(&self, e: &Scalar) -> GroupElement {
        self.pow(&self.g, e)
    }

    /// True if `x` is a valid element of the order-`q` subgroup.
    pub fn is_element(&self, x: &GroupElement) -> bool {
        !x.0.is_zero() && x.0 < *self.p.modulus() && self.p.pow(&x.0, self.q.modulus()) == U256::ONE
    }

    /// Uniformly random group element (`g^r` for random `r`).
    pub fn random_element<R: Rng + ?Sized>(&self, rng: &mut R) -> GroupElement {
        self.g_pow(&self.random_scalar(rng))
    }

    /// Uniformly random non-identity element.
    pub fn random_non_identity<R: Rng + ?Sized>(&self, rng: &mut R) -> GroupElement {
        loop {
            let e = self.random_element(rng);
            if e != self.identity() {
                return e;
            }
        }
    }

    // ----- scalar (exponent) arithmetic, mod q -----

    /// Uniformly random scalar in `[0, q)`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        Scalar(self.q.sample(rng))
    }

    /// Uniformly random nonzero scalar.
    pub fn random_nonzero_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        Scalar(self.q.sample_nonzero(rng))
    }

    /// Scalar from a small integer.
    pub fn scalar_from_u64(&self, x: u64) -> Scalar {
        Scalar(self.q.reduce(&U256::from_u64(x)))
    }

    /// `(a + b) mod q`.
    pub fn scalar_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.q.add(&a.0, &b.0))
    }

    /// `(a - b) mod q`.
    pub fn scalar_sub(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.q.sub(&a.0, &b.0))
    }

    /// `(a * b) mod q`.
    pub fn scalar_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.q.mul(&a.0, &b.0))
    }

    /// `-a mod q`.
    pub fn scalar_neg(&self, a: &Scalar) -> Scalar {
        Scalar(self.q.neg(&a.0))
    }

    /// `a^-1 mod q` (q prime; panics on zero).
    pub fn scalar_inv(&self, a: &Scalar) -> Scalar {
        assert!(!a.0.is_zero(), "inverse of zero scalar");
        Scalar(self.q.inv_prime(&a.0))
    }

    /// Hashes labeled byte strings to a scalar (Fiat–Shamir and
    /// item-to-exponent mapping). Domain-separated by `label`.
    pub fn hash_to_scalar(&self, label: &[u8], parts: &[&[u8]]) -> Scalar {
        let mut all: Vec<&[u8]> = Vec::with_capacity(parts.len() + 2);
        all.push(b"pm-crypto/hash-to-scalar/v1");
        all.push(label);
        all.extend_from_slice(parts);
        let digest = sha256_concat(&all);
        Scalar(self.q.reduce(&U256::from_bytes_be(&digest)))
    }

    /// Hashes labeled byte strings to a group element: `g^H(...)`.
    pub fn hash_to_element(&self, label: &[u8], parts: &[&[u8]]) -> GroupElement {
        let s = self.hash_to_scalar(label, parts);
        self.g_pow(&s)
    }
}

impl GroupElement {
    /// Canonical 32-byte big-endian encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes_be()
    }

    /// Decodes an encoding produced by [`GroupElement::to_bytes`].
    /// The caller must validate membership via [`GroupParams::is_element`].
    pub fn from_bytes(b: &[u8; 32]) -> GroupElement {
        GroupElement(U256::from_bytes_be(b))
    }
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar(U256::ZERO);

    /// Canonical 32-byte big-endian encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes_be()
    }

    /// Decodes a scalar; the caller must ensure it is reduced mod `q`.
    pub fn from_bytes(b: &[u8; 32]) -> Scalar {
        Scalar(U256::from_bytes_be(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> GroupParams {
        GroupParams::default_params()
    }

    #[test]
    fn shipped_params_are_safe_prime_group() {
        let gp = params();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(is_probable_prime(gp.p(), 40, &mut rng), "p must be prime");
        assert!(is_probable_prime(gp.q(), 40, &mut rng), "q must be prime");
        // p = 2q + 1
        assert_eq!(gp.q().shl(1).wrapping_add(&U256::ONE), *gp.p());
        // g generates the order-q subgroup
        assert!(gp.is_element(&gp.generator()));
        assert_ne!(gp.generator(), gp.identity());
    }

    #[test]
    fn group_laws() {
        let gp = params();
        let mut rng = StdRng::seed_from_u64(2);
        let a = gp.random_element(&mut rng);
        let b = gp.random_element(&mut rng);
        let c = gp.random_element(&mut rng);
        // associativity, commutativity, identity, inverse
        assert_eq!(gp.mul(&gp.mul(&a, &b), &c), gp.mul(&a, &gp.mul(&b, &c)));
        assert_eq!(gp.mul(&a, &b), gp.mul(&b, &a));
        assert_eq!(gp.mul(&a, &gp.identity()), a);
        assert_eq!(gp.mul(&a, &gp.inv(&a)), gp.identity());
        assert_eq!(gp.div(&gp.mul(&a, &b), &b), a);
    }

    #[test]
    fn exponent_laws() {
        let gp = params();
        let mut rng = StdRng::seed_from_u64(3);
        let x = gp.random_scalar(&mut rng);
        let y = gp.random_scalar(&mut rng);
        // g^(x+y) = g^x g^y
        let lhs = gp.g_pow(&gp.scalar_add(&x, &y));
        let rhs = gp.mul(&gp.g_pow(&x), &gp.g_pow(&y));
        assert_eq!(lhs, rhs);
        // (g^x)^y = (g^y)^x
        assert_eq!(gp.pow(&gp.g_pow(&x), &y), gp.pow(&gp.g_pow(&y), &x));
        // g^q = 1 (order q)
        assert_eq!(
            gp.pow(&gp.generator(), &Scalar(gp.q().wrapping_sub(&U256::ZERO))),
            gp.identity()
        );
    }

    #[test]
    fn scalar_field_laws() {
        let gp = params();
        let mut rng = StdRng::seed_from_u64(4);
        let a = gp.random_nonzero_scalar(&mut rng);
        let b = gp.random_scalar(&mut rng);
        assert_eq!(gp.scalar_mul(&a, &gp.scalar_inv(&a)), gp.scalar_from_u64(1));
        assert_eq!(gp.scalar_add(&b, &gp.scalar_neg(&b)), Scalar::ZERO);
        assert_eq!(gp.scalar_sub(&gp.scalar_add(&a, &b), &b), a);
    }

    #[test]
    fn element_membership() {
        let gp = params();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            assert!(gp.is_element(&gp.random_element(&mut rng)));
        }
        // 0 and p are not elements; a non-residue is not an element.
        assert!(!gp.is_element(&GroupElement(U256::ZERO)));
        assert!(!gp.is_element(&GroupElement(*gp.p())));
        // g is a square; a generator of the full group (order 2q) is not in
        // the subgroup. Find a non-residue by trial.
        let mut found = false;
        for h in 2u64..50 {
            let cand = GroupElement(U256::from_u64(h));
            if !gp.is_element(&cand) {
                found = true;
                break;
            }
        }
        assert!(found, "some small non-residue exists");
    }

    #[test]
    fn hash_to_scalar_deterministic_and_domain_separated() {
        let gp = params();
        let a = gp.hash_to_scalar(b"ctx1", &[b"hello"]);
        let b = gp.hash_to_scalar(b"ctx1", &[b"hello"]);
        let c = gp.hash_to_scalar(b"ctx2", &[b"hello"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.0 < *gp.q());
    }

    #[test]
    fn serialization_roundtrip() {
        let gp = params();
        let mut rng = StdRng::seed_from_u64(6);
        let e = gp.random_element(&mut rng);
        assert_eq!(GroupElement::from_bytes(&e.to_bytes()), e);
        let s = gp.random_scalar(&mut rng);
        assert_eq!(Scalar::from_bytes(&s.to_bytes()), s);
    }

    #[test]
    fn generate_small_params() {
        // Fresh 64-bit parameters: fast enough for a unit test and
        // exercises the generation path end-to-end.
        let mut rng = StdRng::seed_from_u64(7);
        let gp = GroupParams::generate(64, &mut rng);
        assert_eq!(gp.p().bits(), 64);
        assert!(gp.is_element(&gp.generator()));
        let x = gp.random_scalar(&mut rng);
        let y = gp.random_scalar(&mut rng);
        assert_eq!(
            gp.g_pow(&gp.scalar_add(&x, &y)),
            gp.mul(&gp.g_pow(&x), &gp.g_pow(&y))
        );
    }
}
