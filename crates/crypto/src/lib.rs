//! # pm-crypto — cryptographic substrate for privacy-preserving measurement
//!
//! From-scratch implementations of every primitive the PrivCount and PSC
//! protocols need:
//!
//! * fixed-width big integers ([`u256::U256`]) and Montgomery modular
//!   arithmetic ([`modarith::Modulus`]);
//! * a Schnorr group over a safe prime ([`group`]);
//! * FIPS 180-4 SHA-256 ([`sha256`]), HMAC and key derivation ([`hmac`]);
//! * ElGamal encryption with rerandomization and distributed decryption
//!   ([`elgamal`]);
//! * zero-knowledge proofs: Schnorr proofs of knowledge and
//!   Chaum–Pedersen equality proofs ([`zkp`]);
//! * a rerandomizing verifiable shuffle ([`shuffle`]);
//! * additive secret sharing over `Z_{2^64}` ([`secret`]);
//! * batched operation support: fixed-base exponentiation tables and
//!   chunked parallel maps ([`batch`]), used by PSC's batched mixing.
//!
//! ## Security disclaimer
//!
//! The shipped parameter set is 256-bit — large enough to exercise every
//! code path and to make brute force impractical in tests, but **not** a
//! production-strength discrete-log group. The measurement semantics
//! reproduced from the paper are independent of the parameter size;
//! deployments would swap in ≥2048-bit parameters generated with
//! [`group::GroupParams::generate`].

pub mod batch;
pub mod elgamal;
pub mod group;
pub mod hmac;
pub mod modarith;
pub mod secret;
pub mod sha256;
pub mod shuffle;
pub mod u256;
pub mod zkp;

pub use group::{GroupElement, GroupParams, Scalar};
pub use u256::U256;
