//! Batched group operations: fixed-base precomputation and chunked
//! data-parallel maps.
//!
//! A PSC mixing hop performs thousands of exponentiations, and most of
//! them share one of two bases — the group generator `g` (every
//! encryption and rerandomization computes `g^r`) and the joint public
//! key `y` (the matching `y^r`). [`FixedBasePowers`] trades a one-time
//! table build for a ~4× cheaper per-exponentiation cost: with a 4-bit
//! window over a 256-bit exponent, each `pow` is at most 63
//! multiplications instead of a full square-and-multiply ladder. The
//! result is the *same group element* as [`GroupParams::pow`] — callers
//! relying on bit-identical transcripts can adopt the tables freely.
//!
//! [`par_map_indexed`] is the execution half: it evaluates a pure
//! per-index function over `0..n` on a bounded number of scoped
//! threads, writing each result into its own slot, so the output vector
//! is independent of the thread count by construction.

use crate::elgamal::{Ciphertext, PublicKey};
use crate::group::{GroupElement, GroupParams, Scalar};

/// 4-bit fixed-window exponentiation table for one base.
///
/// `table[w][j] = base^(j · 2^(4w))` for `j in 0..16`, covering 256-bit
/// exponents with 64 windows.
#[derive(Clone, Debug)]
pub struct FixedBasePowers {
    base: GroupElement,
    table: Vec<[GroupElement; 16]>,
}

/// Number of 4-bit windows in a 256-bit exponent.
const WINDOWS: usize = 64;

impl FixedBasePowers {
    /// Builds the window table for `base` (≈ 960 group
    /// multiplications; amortized over every subsequent [`Self::pow`]).
    pub fn new(gp: &GroupParams, base: &GroupElement) -> FixedBasePowers {
        let mut table = Vec::with_capacity(WINDOWS);
        // `step` is base^(2^(4w)) entering window w.
        let mut step = *base;
        for _ in 0..WINDOWS {
            let mut row = [gp.identity(); 16];
            for j in 1..16 {
                row[j] = gp.mul(&row[j - 1], &step);
            }
            // base^(2^(4(w+1))) = (base^(2^(4w)))^16 = row[15] · step.
            step = gp.mul(&row[15], &step);
            table.push(row);
        }
        FixedBasePowers { base: *base, table }
    }

    /// The base this table was built for.
    pub fn base(&self) -> &GroupElement {
        &self.base
    }

    /// `base^e`, identical in value to `gp.pow(base, e)`.
    pub fn pow(&self, gp: &GroupParams, e: &Scalar) -> GroupElement {
        let limbs = &e.0 .0;
        let mut acc = gp.identity();
        for (w, row) in self.table.iter().enumerate() {
            let nibble = ((limbs[w / 16] >> (4 * (w % 16))) & 0xF) as usize;
            if nibble != 0 {
                acc = gp.mul(&acc, &row[nibble]);
            }
        }
        acc
    }
}

/// Fixed-base tables for one ElGamal public key: the generator `g` and
/// the key element `y`, the two bases every encryption and
/// rerandomization exponentiates.
#[derive(Clone, Debug)]
pub struct PrecomputedKey {
    /// The public key the tables serve.
    pub key: PublicKey,
    g: FixedBasePowers,
    y: FixedBasePowers,
}

impl PrecomputedKey {
    /// Builds both tables for `key`.
    pub fn new(gp: &GroupParams, key: &PublicKey) -> PrecomputedKey {
        PrecomputedKey {
            key: *key,
            g: FixedBasePowers::new(gp, &gp.generator()),
            y: FixedBasePowers::new(gp, &key.0),
        }
    }

    /// `g^e` through the table.
    pub fn g_pow(&self, gp: &GroupParams, e: &Scalar) -> GroupElement {
        self.g.pow(gp, e)
    }

    /// `y^e` through the table.
    pub fn y_pow(&self, gp: &GroupParams, e: &Scalar) -> GroupElement {
        self.y.pow(gp, e)
    }

    /// [`crate::elgamal::encrypt_with`] through the tables: encrypts `m`
    /// under the key with caller-chosen randomness `r`.
    pub fn encrypt_with(&self, gp: &GroupParams, m: &GroupElement, r: &Scalar) -> Ciphertext {
        Ciphertext {
            a: self.g_pow(gp, r),
            b: gp.mul(m, &self.y_pow(gp, r)),
        }
    }

    /// [`crate::elgamal::rerandomize_with`] through the tables.
    pub fn rerandomize_with(&self, gp: &GroupParams, ct: &Ciphertext, s: &Scalar) -> Ciphertext {
        Ciphertext {
            a: gp.mul(&ct.a, &self.g_pow(gp, s)),
            b: gp.mul(&ct.b, &self.y_pow(gp, s)),
        }
    }
}

/// Evaluates `f(i)` for `i in 0..n` on up to `threads` scoped OS
/// threads, returning results in index order.
///
/// Each index owns exactly one output slot, so the result — unlike the
/// schedule — is independent of the thread count. `threads <= 1` (or a
/// single item) runs inline with no thread spawned.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(t * chunk + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt_with, keygen, rerandomize_with};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_base_matches_plain_pow() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(1);
        let base = gp.random_element(&mut rng);
        let fb = FixedBasePowers::new(&gp, &base);
        for _ in 0..20 {
            let e = gp.random_scalar(&mut rng);
            assert_eq!(fb.pow(&gp, &e), gp.pow(&base, &e));
        }
        // Edge exponents.
        assert_eq!(fb.pow(&gp, &Scalar::ZERO), gp.identity());
        assert_eq!(fb.pow(&gp, &gp.scalar_from_u64(1)), base);
    }

    #[test]
    fn precomputed_key_matches_reference_ops() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(2);
        let kp = keygen(&gp, &mut rng);
        let pk = PrecomputedKey::new(&gp, &kp.public);
        for _ in 0..10 {
            let m = gp.random_element(&mut rng);
            let r = gp.random_scalar(&mut rng);
            let ct = pk.encrypt_with(&gp, &m, &r);
            assert_eq!(ct, encrypt_with(&gp, &kp.public, &m, &r));
            let s = gp.random_scalar(&mut rng);
            assert_eq!(
                pk.rerandomize_with(&gp, &ct, &s),
                rerandomize_with(&gp, &kp.public, &ct, &s)
            );
        }
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        let base: Vec<u64> = (0..97).map(|i| i * i + 1).collect();
        let expect: Vec<u64> = base.iter().map(|x| x.wrapping_mul(31)).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let got = par_map_indexed(base.len(), threads, |i| base[i].wrapping_mul(31));
            assert_eq!(got, expect, "threads={threads}");
        }
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
    }
}
