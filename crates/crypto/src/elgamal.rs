//! ElGamal encryption over the Schnorr group, with the homomorphic
//! operations PSC relies on: rerandomization, ciphertext multiplication,
//! plaintext exponentiation, and distributed (multi-party) decryption.
//!
//! A ciphertext is `(a, b) = (g^r, m · y^r)`. Multiplying ciphertexts
//! multiplies plaintexts; raising both components to `k` raises the
//! plaintext to `k` (used by PSC computation parties to randomize
//! non-identity values while fixing the identity); rerandomization
//! multiplies in a fresh encryption of the identity.

use crate::group::{GroupElement, GroupParams, Scalar};
use crate::hmac::{stream_decrypt, stream_encrypt};
use rand::Rng;

/// An ElGamal public key `y = g^x`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub GroupElement);

/// An ElGamal secret key `x`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SecretKey(pub Scalar);

/// An ElGamal ciphertext `(a, b) = (g^r, m·y^r)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ciphertext {
    /// `g^r`
    pub a: GroupElement,
    /// `m · y^r`
    pub b: GroupElement,
}

/// A keypair.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    /// Public half.
    pub public: PublicKey,
    /// Secret half.
    pub secret: SecretKey,
}

/// Generates a fresh keypair.
pub fn keygen<R: Rng + ?Sized>(gp: &GroupParams, rng: &mut R) -> KeyPair {
    let x = gp.random_nonzero_scalar(rng);
    KeyPair {
        public: PublicKey(gp.g_pow(&x)),
        secret: SecretKey(x),
    }
}

/// Combines public-key shares `y_i = g^{x_i}` into the joint key
/// `y = g^{Σ x_i}` (PSC distributed keygen).
pub fn combine_public_keys(gp: &GroupParams, shares: &[PublicKey]) -> PublicKey {
    assert!(!shares.is_empty(), "need at least one key share");
    let mut acc = gp.identity();
    for s in shares {
        acc = gp.mul(&acc, &s.0);
    }
    PublicKey(acc)
}

/// Encrypts `m` under `y` with fresh randomness.
pub fn encrypt<R: Rng + ?Sized>(
    gp: &GroupParams,
    y: &PublicKey,
    m: &GroupElement,
    rng: &mut R,
) -> Ciphertext {
    let r = gp.random_scalar(rng);
    encrypt_with(gp, y, m, &r)
}

/// Encrypts with caller-chosen randomness (used by proofs and tests).
pub fn encrypt_with(gp: &GroupParams, y: &PublicKey, m: &GroupElement, r: &Scalar) -> Ciphertext {
    Ciphertext {
        a: gp.g_pow(r),
        b: gp.mul(m, &gp.pow(&y.0, r)),
    }
}

/// Encryption of the group identity (PSC's "unmarked" cell value).
pub fn encrypt_identity<R: Rng + ?Sized>(
    gp: &GroupParams,
    y: &PublicKey,
    rng: &mut R,
) -> Ciphertext {
    encrypt(gp, y, &gp.identity(), rng)
}

/// Decrypts with a single full secret key.
pub fn decrypt(gp: &GroupParams, sk: &SecretKey, ct: &Ciphertext) -> GroupElement {
    let shared = gp.pow(&ct.a, &sk.0);
    gp.div(&ct.b, &shared)
}

/// Homomorphic multiplication: plaintexts multiply.
pub fn mul_ciphertexts(gp: &GroupParams, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
    Ciphertext {
        a: gp.mul(&c1.a, &c2.a),
        b: gp.mul(&c1.b, &c2.b),
    }
}

/// Rerandomizes `ct` with fresh `s`: same plaintext, fresh randomness.
pub fn rerandomize<R: Rng + ?Sized>(
    gp: &GroupParams,
    y: &PublicKey,
    ct: &Ciphertext,
    rng: &mut R,
) -> Ciphertext {
    let s = gp.random_scalar(rng);
    rerandomize_with(gp, y, ct, &s)
}

/// Rerandomizes with caller-chosen randomness.
pub fn rerandomize_with(
    gp: &GroupParams,
    y: &PublicKey,
    ct: &Ciphertext,
    s: &Scalar,
) -> Ciphertext {
    Ciphertext {
        a: gp.mul(&ct.a, &gp.g_pow(s)),
        b: gp.mul(&ct.b, &gp.pow(&y.0, s)),
    }
}

/// Raises the plaintext to `k` by exponentiating both components.
/// The identity stays the identity; everything else is randomized when
/// `k` is random (PSC's zero-preserving randomization).
pub fn exponentiate(gp: &GroupParams, ct: &Ciphertext, k: &Scalar) -> Ciphertext {
    Ciphertext {
        a: gp.pow(&ct.a, k),
        b: gp.pow(&ct.b, k),
    }
}

/// One party's contribution to distributed decryption: `d_i = a^{x_i}`.
pub fn partial_decrypt(gp: &GroupParams, share: &SecretKey, ct: &Ciphertext) -> GroupElement {
    gp.pow(&ct.a, &share.0)
}

/// Combines partial decryptions: `m = b / Π d_i`.
pub fn combine_partial_decryptions(
    gp: &GroupParams,
    ct: &Ciphertext,
    partials: &[GroupElement],
) -> GroupElement {
    let mut denom = gp.identity();
    for d in partials {
        denom = gp.mul(&denom, d);
    }
    gp.div(&ct.b, &denom)
}

/// Hybrid encryption: ElGamal KEM + HMAC-stream DEM. Used by PrivCount
/// DCs to deliver blinding shares to Share Keepers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HybridCiphertext {
    /// Ephemeral KEM share `g^r`.
    pub kem: GroupElement,
    /// Stream-encrypted payload.
    pub payload: Vec<u8>,
}

/// Encrypts an arbitrary byte payload to `y`.
pub fn hybrid_encrypt<R: Rng + ?Sized>(
    gp: &GroupParams,
    y: &PublicKey,
    plaintext: &[u8],
    rng: &mut R,
) -> HybridCiphertext {
    let r = gp.random_nonzero_scalar(rng);
    let kem = gp.g_pow(&r);
    let shared = gp.pow(&y.0, &r);
    let payload = stream_encrypt(&shared.to_bytes(), b"pm-crypto/hybrid/v1", plaintext);
    HybridCiphertext { kem, payload }
}

/// Decrypts a [`HybridCiphertext`].
pub fn hybrid_decrypt(gp: &GroupParams, sk: &SecretKey, ct: &HybridCiphertext) -> Vec<u8> {
    let shared = gp.pow(&ct.kem, &sk.0);
    stream_decrypt(&shared.to_bytes(), b"pm-crypto/hybrid/v1", &ct.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GroupParams, KeyPair, StdRng) {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(42);
        let kp = keygen(&gp, &mut rng);
        (gp, kp, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (gp, kp, mut rng) = setup();
        for _ in 0..10 {
            let m = gp.random_element(&mut rng);
            let ct = encrypt(&gp, &kp.public, &m, &mut rng);
            assert_eq!(decrypt(&gp, &kp.secret, &ct), m);
        }
    }

    #[test]
    fn homomorphic_multiplication() {
        let (gp, kp, mut rng) = setup();
        let m1 = gp.random_element(&mut rng);
        let m2 = gp.random_element(&mut rng);
        let c1 = encrypt(&gp, &kp.public, &m1, &mut rng);
        let c2 = encrypt(&gp, &kp.public, &m2, &mut rng);
        let prod = mul_ciphertexts(&gp, &c1, &c2);
        assert_eq!(decrypt(&gp, &kp.secret, &prod), gp.mul(&m1, &m2));
    }

    #[test]
    fn rerandomization_preserves_plaintext_changes_ciphertext() {
        let (gp, kp, mut rng) = setup();
        let m = gp.random_element(&mut rng);
        let ct = encrypt(&gp, &kp.public, &m, &mut rng);
        let rr = rerandomize(&gp, &kp.public, &ct, &mut rng);
        assert_ne!(ct, rr);
        assert_eq!(decrypt(&gp, &kp.secret, &rr), m);
    }

    #[test]
    fn exponentiation_fixes_identity_randomizes_rest() {
        let (gp, kp, mut rng) = setup();
        let k = gp.random_nonzero_scalar(&mut rng);
        let id_ct = encrypt_identity(&gp, &kp.public, &mut rng);
        let id_exp = exponentiate(&gp, &id_ct, &k);
        assert_eq!(decrypt(&gp, &kp.secret, &id_exp), gp.identity());

        let m = gp.random_non_identity(&mut rng);
        let m_ct = encrypt(&gp, &kp.public, &m, &mut rng);
        let m_exp = exponentiate(&gp, &m_ct, &k);
        let pt = decrypt(&gp, &kp.secret, &m_exp);
        assert_ne!(pt, gp.identity());
        assert_eq!(pt, gp.pow(&m, &k));
    }

    #[test]
    fn distributed_decryption() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(43);
        let shares: Vec<KeyPair> = (0..3).map(|_| keygen(&gp, &mut rng)).collect();
        let joint = combine_public_keys(&gp, &shares.iter().map(|k| k.public).collect::<Vec<_>>());
        let m = gp.random_element(&mut rng);
        let ct = encrypt(&gp, &joint, &m, &mut rng);
        let partials: Vec<GroupElement> = shares
            .iter()
            .map(|k| partial_decrypt(&gp, &k.secret, &ct))
            .collect();
        assert_eq!(combine_partial_decryptions(&gp, &ct, &partials), m);
        // Missing a partial decryption must NOT recover the plaintext.
        assert_ne!(combine_partial_decryptions(&gp, &ct, &partials[..2]), m);
    }

    #[test]
    fn deterministic_encrypt_with() {
        let (gp, kp, mut rng) = setup();
        let m = gp.random_element(&mut rng);
        let r = gp.random_scalar(&mut rng);
        assert_eq!(
            encrypt_with(&gp, &kp.public, &m, &r),
            encrypt_with(&gp, &kp.public, &m, &r)
        );
    }

    #[test]
    fn hybrid_roundtrip() {
        let (gp, kp, mut rng) = setup();
        let msg = b"per-counter blinding shares: [1, 2, 3]".to_vec();
        let ct = hybrid_encrypt(&gp, &kp.public, &msg, &mut rng);
        assert_eq!(hybrid_decrypt(&gp, &kp.secret, &ct), msg);
        // Wrong key garbles.
        let other = keygen(&gp, &mut rng);
        assert_ne!(hybrid_decrypt(&gp, &other.secret, &ct), msg);
    }

    #[test]
    fn hybrid_empty_payload() {
        let (gp, kp, mut rng) = setup();
        let ct = hybrid_encrypt(&gp, &kp.public, b"", &mut rng);
        assert_eq!(hybrid_decrypt(&gp, &kp.secret, &ct), Vec::<u8>::new());
    }
}
