//! Additive secret sharing over `Z_{2^64}` — the blinding scheme behind
//! PrivCount counters.
//!
//! A Data Collector initializes each counter to
//! `noise + Σ_k share_k (mod 2^64)` and hands `-share_k` to Share Keeper
//! `k`. Increments are public-code additions. At publish time the DC
//! reveals its (blinded) counter and every SK reveals the sum of the
//! shares it holds; the Tally Server adds everything and the blinding
//! telescopes away, leaving `true count + noise`. No proper subset of
//! parties learns anything about the count (any missing share is a
//! one-time pad).
//!
//! Counters are signed quantities (noise can drive them negative), so
//! values are interpreted as two's-complement `i64` at the end.

use rand::Rng;

/// A blinding share held by one Share Keeper for one counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlindingShare(pub u64);

/// A blinded counter register at a Data Collector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlindedCounter(pub u64);

impl BlindedCounter {
    /// Initializes a counter register holding `initial` (typically the
    /// DC's noise contribution, fixed-point encoded) plus blinding:
    /// generates one random share per Share Keeper, adds each share into
    /// the register, and returns the *negated* shares to be delivered to
    /// the SKs.
    pub fn blind<R: Rng + ?Sized>(
        initial: i64,
        num_share_keepers: usize,
        rng: &mut R,
    ) -> (BlindedCounter, Vec<BlindingShare>) {
        let mut acc = initial as u64;
        let mut shares = Vec::with_capacity(num_share_keepers);
        for _ in 0..num_share_keepers {
            let r: u64 = rng.gen();
            acc = acc.wrapping_add(r);
            shares.push(BlindingShare(r.wrapping_neg()));
        }
        (BlindedCounter(acc), shares)
    }

    /// Adds a (signed) increment to the register.
    pub fn increment(&mut self, by: i64) {
        self.0 = self.0.wrapping_add(by as u64);
    }

    /// The raw blinded value to publish.
    pub fn publish(&self) -> u64 {
        self.0
    }
}

/// Accumulates blinding shares at a Share Keeper (one accumulator per
/// counter).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShareAccumulator(pub u64);

impl ShareAccumulator {
    /// Absorbs one DC's share.
    pub fn absorb(&mut self, share: BlindingShare) {
        self.0 = self.0.wrapping_add(share.0);
    }

    /// The aggregate share sum to publish.
    pub fn publish(&self) -> u64 {
        self.0
    }
}

/// Tally-side combination: sums all blinded DC registers and all SK
/// share accumulators; the blinding telescopes, leaving the signed total.
pub fn unblind_total(dc_values: &[u64], sk_values: &[u64]) -> i64 {
    let mut acc = 0u64;
    for v in dc_values {
        acc = acc.wrapping_add(*v);
    }
    for v in sk_values {
        acc = acc.wrapping_add(*v);
    }
    acc as i64
}

/// Fixed-point encoding used for noisy (fractional) counter values:
/// `FIXED_ONE` units per 1.0. PrivCount publishes counts large enough
/// that 2^-20 granularity is far below the noise floor.
pub const FIXED_POINT_BITS: u32 = 20;
/// The fixed-point scale factor.
pub const FIXED_ONE: i64 = 1 << FIXED_POINT_BITS;

/// Encodes a float (e.g. a Gaussian noise draw) as fixed point.
pub fn to_fixed(x: f64) -> i64 {
    (x * FIXED_ONE as f64).round() as i64
}

/// Decodes a fixed-point value to a float.
pub fn from_fixed(x: i64) -> f64 {
    x as f64 / FIXED_ONE as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blinding_telescopes() {
        let mut rng = StdRng::seed_from_u64(1);
        let num_sks = 3;
        let num_dcs = 5;
        let mut sk_accs = vec![ShareAccumulator::default(); num_sks];
        let mut dc_regs = Vec::new();
        let mut truth: i64 = 0;
        for dc in 0..num_dcs {
            let noise = (dc as i64 - 2) * 7; // some signed "noise"
            let (mut reg, shares) = BlindedCounter::blind(noise, num_sks, &mut rng);
            for (k, s) in shares.into_iter().enumerate() {
                sk_accs[k].absorb(s);
            }
            let incr = 100 + dc as i64;
            reg.increment(incr);
            truth += noise + incr;
            dc_regs.push(reg.publish());
        }
        let sk_vals: Vec<u64> = sk_accs.iter().map(|a| a.publish()).collect();
        assert_eq!(unblind_total(&dc_regs, &sk_vals), truth);
    }

    #[test]
    fn negative_totals_survive() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut reg, shares) = BlindedCounter::blind(-1000, 2, &mut rng);
        reg.increment(250);
        let mut accs = [ShareAccumulator::default(); 2];
        for (k, s) in shares.into_iter().enumerate() {
            accs[k].absorb(s);
        }
        let total = unblind_total(&[reg.publish()], &[accs[0].publish(), accs[1].publish()]);
        assert_eq!(total, -750);
    }

    #[test]
    fn missing_share_destroys_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let (reg, shares) = BlindedCounter::blind(12345, 3, &mut rng);
        // Tally with only 2 of 3 SK shares: result is effectively random,
        // definitely not the true value (w.p. 1 - 2^-64).
        let partial = unblind_total(&[reg.publish()], &[shares[0].0, shares[1].0]);
        assert_ne!(partial, 12345);
    }

    #[test]
    fn zero_sks_means_no_blinding() {
        let mut rng = StdRng::seed_from_u64(4);
        let (reg, shares) = BlindedCounter::blind(7, 0, &mut rng);
        assert!(shares.is_empty());
        assert_eq!(unblind_total(&[reg.publish()], &[]), 7);
    }

    #[test]
    fn fixed_point_roundtrip() {
        for x in [0.0, 1.0, -1.0, 3.125, -1234.5, 0.000001] {
            let enc = to_fixed(x);
            assert!((from_fixed(enc) - x).abs() < 1e-5, "{x}");
        }
    }

    #[test]
    fn increments_commute_with_blinding() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut a, sh) = BlindedCounter::blind(0, 1, &mut rng);
        a.increment(5);
        a.increment(-3);
        a.increment(i64::MAX / 2);
        a.increment(-(i64::MAX / 2));
        let mut acc = ShareAccumulator::default();
        acc.absorb(sh[0]);
        assert_eq!(unblind_total(&[a.publish()], &[acc.publish()]), 2);
    }
}
