//! Non-interactive zero-knowledge proofs (Fiat–Shamir over SHA-256).
//!
//! * [`SchnorrProof`] — proof of knowledge of a discrete log, used by PSC
//!   computation parties to certify their ElGamal key shares.
//! * [`DleqProof`] — Chaum–Pedersen proof that two pairs share the same
//!   discrete log, used to verify partial decryptions and the
//!   zero-preserving exponentiation step.
//!
//! All challenges are derived from a [`Transcript`], which binds the
//! statement, the prover identity, and protocol context.

use crate::group::{GroupElement, GroupParams, Scalar};
use crate::sha256::{Sha256, DIGEST_LEN};
use rand::Rng;

/// A Fiat–Shamir transcript: an append-only hash of labeled messages.
#[derive(Clone)]
pub struct Transcript {
    hasher: Sha256,
}

impl Transcript {
    /// Starts a transcript under a protocol domain label.
    pub fn new(domain: &[u8]) -> Transcript {
        let mut hasher = Sha256::new();
        hasher.update(b"pm-crypto/transcript/v1");
        hasher.update(&(domain.len() as u64).to_be_bytes());
        hasher.update(domain);
        Transcript { hasher }
    }

    /// Appends a labeled byte string.
    pub fn append(&mut self, label: &[u8], data: &[u8]) -> &mut Self {
        self.hasher.update(&(label.len() as u64).to_be_bytes());
        self.hasher.update(label);
        self.hasher.update(&(data.len() as u64).to_be_bytes());
        self.hasher.update(data);
        self
    }

    /// Appends a group element.
    pub fn append_element(&mut self, label: &[u8], e: &GroupElement) -> &mut Self {
        self.append(label, &e.to_bytes())
    }

    /// Derives a challenge scalar, consuming the transcript state so far.
    pub fn challenge_scalar(&self, gp: &GroupParams, label: &[u8]) -> Scalar {
        let digest = self.clone_digest(label);
        gp.hash_to_scalar(b"transcript-challenge", &[&digest])
    }

    /// Derives `n` challenge bits (for cut-and-choose protocols).
    pub fn challenge_bits(&self, label: &[u8], n: usize) -> Vec<bool> {
        let mut bits = Vec::with_capacity(n);
        let mut counter = 0u64;
        while bits.len() < n {
            let mut h = self.hasher.clone();
            h.update(&(label.len() as u64).to_be_bytes());
            h.update(label);
            h.update(&counter.to_be_bytes());
            let digest = h.finalize();
            for byte in digest.iter() {
                for i in 0..8 {
                    if bits.len() == n {
                        break;
                    }
                    bits.push((byte >> i) & 1 == 1);
                }
            }
            counter += 1;
        }
        bits
    }

    fn clone_digest(&self, label: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.hasher.clone();
        h.update(&(label.len() as u64).to_be_bytes());
        h.update(label);
        h.finalize()
    }
}

/// Schnorr proof of knowledge of `x` such that `y = g^x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchnorrProof {
    /// Commitment `t = g^w`.
    pub commit: GroupElement,
    /// Response `s = w + c·x mod q`.
    pub response: Scalar,
}

impl SchnorrProof {
    /// Proves knowledge of `x` for statement `y = g^x`.
    pub fn prove<R: Rng + ?Sized>(
        gp: &GroupParams,
        x: &Scalar,
        y: &GroupElement,
        transcript: &mut Transcript,
        rng: &mut R,
    ) -> SchnorrProof {
        let w = gp.random_scalar(rng);
        let t = gp.g_pow(&w);
        transcript.append_element(b"schnorr.y", y);
        transcript.append_element(b"schnorr.t", &t);
        let c = transcript.challenge_scalar(gp, b"schnorr.c");
        let s = gp.scalar_add(&w, &gp.scalar_mul(&c, x));
        SchnorrProof {
            commit: t,
            response: s,
        }
    }

    /// Verifies the proof against statement `y`.
    pub fn verify(&self, gp: &GroupParams, y: &GroupElement, transcript: &mut Transcript) -> bool {
        if !gp.is_element(y) || !gp.is_element(&self.commit) {
            return false;
        }
        transcript.append_element(b"schnorr.y", y);
        transcript.append_element(b"schnorr.t", &self.commit);
        let c = transcript.challenge_scalar(gp, b"schnorr.c");
        // g^s == t · y^c
        gp.g_pow(&self.response) == gp.mul(&self.commit, &gp.pow(y, &c))
    }
}

/// Chaum–Pedersen proof that `log_g(y) == log_a(d)`, i.e. the prover
/// applied the same secret exponent to two bases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DleqProof {
    /// `t1 = g^w`
    pub commit_g: GroupElement,
    /// `t2 = a^w`
    pub commit_a: GroupElement,
    /// `s = w + c·x mod q`
    pub response: Scalar,
}

impl DleqProof {
    /// Proves `y = g^x ∧ d = a^x` for secret `x`.
    pub fn prove<R: Rng + ?Sized>(
        gp: &GroupParams,
        x: &Scalar,
        a: &GroupElement,
        y: &GroupElement,
        d: &GroupElement,
        transcript: &mut Transcript,
        rng: &mut R,
    ) -> DleqProof {
        let w = gp.random_scalar(rng);
        Self::prove_with_nonce(gp, x, a, y, d, transcript, &w)
    }

    /// Proves with a caller-supplied commitment nonce `w`.
    ///
    /// Callers that batch proof generation (PSC's parallel mixing) draw
    /// every nonce from a single RNG in a canonical sequential order,
    /// then prove cells concurrently; the proof is identical to
    /// [`DleqProof::prove`] fed the same nonce. `w` must be fresh and
    /// uniform per proof — reuse leaks `x`.
    pub fn prove_with_nonce(
        gp: &GroupParams,
        x: &Scalar,
        a: &GroupElement,
        y: &GroupElement,
        d: &GroupElement,
        transcript: &mut Transcript,
        w: &Scalar,
    ) -> DleqProof {
        let w = *w;
        let t1 = gp.g_pow(&w);
        let t2 = gp.pow(a, &w);
        transcript.append_element(b"dleq.a", a);
        transcript.append_element(b"dleq.y", y);
        transcript.append_element(b"dleq.d", d);
        transcript.append_element(b"dleq.t1", &t1);
        transcript.append_element(b"dleq.t2", &t2);
        let c = transcript.challenge_scalar(gp, b"dleq.c");
        let s = gp.scalar_add(&w, &gp.scalar_mul(&c, x));
        DleqProof {
            commit_g: t1,
            commit_a: t2,
            response: s,
        }
    }

    /// Verifies against statement `(a, y, d)`.
    pub fn verify(
        &self,
        gp: &GroupParams,
        a: &GroupElement,
        y: &GroupElement,
        d: &GroupElement,
        transcript: &mut Transcript,
    ) -> bool {
        for e in [a, y, d, &self.commit_g, &self.commit_a] {
            if !gp.is_element(e) {
                return false;
            }
        }
        transcript.append_element(b"dleq.a", a);
        transcript.append_element(b"dleq.y", y);
        transcript.append_element(b"dleq.d", d);
        transcript.append_element(b"dleq.t1", &self.commit_g);
        transcript.append_element(b"dleq.t2", &self.commit_a);
        let c = transcript.challenge_scalar(gp, b"dleq.c");
        gp.g_pow(&self.response) == gp.mul(&self.commit_g, &gp.pow(y, &c))
            && gp.pow(a, &self.response) == gp.mul(&self.commit_a, &gp.pow(d, &c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schnorr_accepts_honest() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(1);
        let x = gp.random_scalar(&mut rng);
        let y = gp.g_pow(&x);
        let proof = SchnorrProof::prove(&gp, &x, &y, &mut Transcript::new(b"test"), &mut rng);
        assert!(proof.verify(&gp, &y, &mut Transcript::new(b"test")));
    }

    #[test]
    fn schnorr_rejects_wrong_statement() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(2);
        let x = gp.random_scalar(&mut rng);
        let y = gp.g_pow(&x);
        let proof = SchnorrProof::prove(&gp, &x, &y, &mut Transcript::new(b"test"), &mut rng);
        let other = gp.random_element(&mut rng);
        assert!(!proof.verify(&gp, &other, &mut Transcript::new(b"test")));
    }

    #[test]
    fn schnorr_rejects_wrong_domain() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(3);
        let x = gp.random_scalar(&mut rng);
        let y = gp.g_pow(&x);
        let proof = SchnorrProof::prove(&gp, &x, &y, &mut Transcript::new(b"ctx-a"), &mut rng);
        assert!(!proof.verify(&gp, &y, &mut Transcript::new(b"ctx-b")));
    }

    #[test]
    fn schnorr_rejects_tampered_response() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(4);
        let x = gp.random_scalar(&mut rng);
        let y = gp.g_pow(&x);
        let mut proof = SchnorrProof::prove(&gp, &x, &y, &mut Transcript::new(b"t"), &mut rng);
        proof.response = gp.scalar_add(&proof.response, &gp.scalar_from_u64(1));
        assert!(!proof.verify(&gp, &y, &mut Transcript::new(b"t")));
    }

    #[test]
    fn dleq_accepts_honest() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(5);
        let x = gp.random_scalar(&mut rng);
        let a = gp.random_element(&mut rng);
        let y = gp.g_pow(&x);
        let d = gp.pow(&a, &x);
        let proof = DleqProof::prove(&gp, &x, &a, &y, &d, &mut Transcript::new(b"t"), &mut rng);
        assert!(proof.verify(&gp, &a, &y, &d, &mut Transcript::new(b"t")));
    }

    #[test]
    fn dleq_rejects_mismatched_exponent() {
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(6);
        let x = gp.random_scalar(&mut rng);
        let x2 = gp.random_scalar(&mut rng);
        let a = gp.random_element(&mut rng);
        let y = gp.g_pow(&x);
        let d = gp.pow(&a, &x2); // wrong exponent on the second base
        let proof = DleqProof::prove(&gp, &x, &a, &y, &d, &mut Transcript::new(b"t"), &mut rng);
        assert!(!proof.verify(&gp, &a, &y, &d, &mut Transcript::new(b"t")));
    }

    #[test]
    fn dleq_binds_partial_decryption() {
        // The PSC use case: prove d = a^x is a correct partial decryption
        // under key share y = g^x.
        let gp = GroupParams::default_params();
        let mut rng = StdRng::seed_from_u64(7);
        let kp = crate::elgamal::keygen(&gp, &mut rng);
        let m = gp.random_element(&mut rng);
        let ct = crate::elgamal::encrypt(&gp, &kp.public, &m, &mut rng);
        let d = crate::elgamal::partial_decrypt(&gp, &kp.secret, &ct);
        let proof = DleqProof::prove(
            &gp,
            &kp.secret.0,
            &ct.a,
            &kp.public.0,
            &d,
            &mut Transcript::new(b"psc.decrypt"),
            &mut rng,
        );
        assert!(proof.verify(
            &gp,
            &ct.a,
            &kp.public.0,
            &d,
            &mut Transcript::new(b"psc.decrypt")
        ));
        // A lying decryptor (wrong d) fails.
        let bad = gp.mul(&d, &gp.generator());
        assert!(!proof.verify(
            &gp,
            &ct.a,
            &kp.public.0,
            &bad,
            &mut Transcript::new(b"psc.decrypt")
        ));
    }

    #[test]
    fn challenge_bits_deterministic_and_unbiased_ish() {
        let mut t = Transcript::new(b"bits");
        t.append(b"x", b"y");
        let bits1 = t.challenge_bits(b"c", 256);
        let bits2 = t.challenge_bits(b"c", 256);
        assert_eq!(bits1, bits2);
        let ones = bits1.iter().filter(|b| **b).count();
        // 256 fair coin flips: P(outside [80, 176]) is negligible.
        assert!((80..=176).contains(&ones), "ones = {ones}");
        // Different label gives different bits.
        let bits3 = t.challenge_bits(b"d", 256);
        assert_ne!(bits1, bits3);
    }

    #[test]
    fn transcript_append_changes_challenges() {
        let gp = GroupParams::default_params();
        let mut t1 = Transcript::new(b"x");
        let mut t2 = Transcript::new(b"x");
        t2.append(b"extra", b"data");
        assert_ne!(
            t1.challenge_scalar(&gp, b"c"),
            t2.challenge_scalar(&gp, b"c")
        );
        // Appending then re-deriving is stable.
        t1.append(b"extra", b"data");
        assert_eq!(
            t1.challenge_scalar(&gp, b"c"),
            t2.challenge_scalar(&gp, b"c")
        );
    }
}
