//! HMAC-SHA256, HKDF-style key derivation, and a counter-mode keystream.
//!
//! These primitives back the hybrid encryption PrivCount uses to deliver
//! blinding shares to Share Keepers, and deterministic per-party
//! randomness derivation.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)` (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256_parts(key, &[message])
}

/// HMAC over multiple message segments.
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract (RFC 5869): `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869): derives `len` bytes from `prk` and `info`.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let block = hmac_sha256_parts(prk, &[&t, info, &[counter]]);
        t = block.to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// One-call HKDF: extract then expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

/// Counter-mode keystream built on HMAC-SHA256, used as a stream cipher
/// for hybrid encryption (key must be unique per message: derive it from
/// a fresh DH share).
pub struct KeyStream {
    key: [u8; DIGEST_LEN],
    block: [u8; DIGEST_LEN],
    counter: u64,
    offset: usize,
}

impl KeyStream {
    /// Creates a keystream bound to `key` and a domain-separating `label`.
    pub fn new(key: &[u8], label: &[u8]) -> KeyStream {
        let prk = hkdf_extract(label, key);
        let mut ks = KeyStream {
            key: prk,
            block: [0u8; DIGEST_LEN],
            counter: 0,
            offset: DIGEST_LEN, // force refill on first byte
        };
        ks.refill();
        ks
    }

    fn refill(&mut self) {
        self.block = hmac_sha256_parts(&self.key, &[b"keystream", &self.counter.to_be_bytes()]);
        self.counter += 1;
        self.offset = 0;
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.offset == DIGEST_LEN {
                self.refill();
            }
            *byte ^= self.block[self.offset];
            self.offset += 1;
        }
    }
}

/// Encrypts `plaintext` under `key`/`label`; prepends nothing (the key is
/// assumed fresh, e.g. derived from an ephemeral DH exchange).
pub fn stream_encrypt(key: &[u8], label: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut data = plaintext.to_vec();
    KeyStream::new(key, label).apply(&mut data);
    data
}

/// Inverse of [`stream_encrypt`].
pub fn stream_decrypt(key: &[u8], label: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    stream_encrypt(key, label, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        // HMAC-SHA256 with key = 0x0b * 20, data = "Hi There".
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        // key = "Jefe", data = "what do ya want for nothing?"
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: 131-byte key (forces key hashing).
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hmac_parts_equals_concat() {
        let a = hmac_sha256(b"key", b"hello world");
        let b = hmac_sha256_parts(b"key", &[b"hello", b" ", b"world"]);
        assert_eq!(a, b);
    }

    #[test]
    fn hkdf_lengths_and_determinism() {
        let out1 = hkdf(b"salt", b"ikm", b"info", 100);
        let out2 = hkdf(b"salt", b"ikm", b"info", 100);
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 100);
        let out3 = hkdf(b"salt", b"ikm", b"other", 100);
        assert_ne!(out1, out3);
        // Prefix property: shorter output is a prefix of longer output.
        let short = hkdf(b"salt", b"ikm", b"info", 10);
        assert_eq!(&out1[..10], &short[..]);
    }

    #[test]
    fn keystream_roundtrip() {
        let msg = b"attack at dawn; bring 651 circuits".to_vec();
        let ct = stream_encrypt(b"shared-secret", b"test", &msg);
        assert_ne!(ct, msg);
        let pt = stream_decrypt(b"shared-secret", b"test", &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn keystream_label_separation() {
        let msg = vec![0u8; 64];
        let a = stream_encrypt(b"k", b"label-a", &msg);
        let b = stream_encrypt(b"k", b"label-b", &msg);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_long_message() {
        let msg = vec![0xa5u8; 10_000];
        let ct = stream_encrypt(b"k", b"l", &msg);
        let pt = stream_decrypt(b"k", b"l", &ct);
        assert_eq!(pt, msg);
        // Keystream should not be trivially periodic at block size.
        assert_ne!(&ct[..32], &ct[32..64]);
    }
}
