//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! The round constants are not transcribed from a table: they are derived
//! at first use by exact integer root extraction (`K[i]` is the first 32
//! fractional bits of the cube root of the i-th prime, `H0` likewise for
//! square roots), which makes the implementation self-contained and
//! self-checking. Known-answer tests pin the published digests.

use std::sync::OnceLock;

/// Output size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 64;

/// Streaming SHA-256 context.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hashing context.
    pub fn new() -> Self {
        Sha256 {
            state: *initial_state(),
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&rest[..BLOCK_LEN]);
            compress(&mut self.state, &block);
            rest = &rest[BLOCK_LEN..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
        self
    }

    /// Finishes and returns the digest. The context is consumed.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        let mut tail = Vec::with_capacity(pad_len + 8);
        tail.extend_from_slice(&pad[..pad_len]);
        tail.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&tail);
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

/// One-shot convenience: `SHA-256(data)`.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot over multiple segments (avoids concatenation allocations).
pub fn sha256_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let k = round_constants();
    let mut w = [0u32; 64];
    for (i, item) in w.iter_mut().enumerate().take(16) {
        *item = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(k[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// First `n` primes, by trial division (n is tiny).
fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut cand = 2u64;
    while primes.len() < n {
        if primes.iter().all(|p| !cand.is_multiple_of(*p)) {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

/// `floor(sqrt(x))` for u128 by binary search.
fn isqrt_u128(x: u128) -> u128 {
    let mut lo = 0u128;
    let mut hi = 1u128 << 64;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_mul(mid).map(|m| m <= x).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// `floor(cbrt(x))` for u128 by binary search.
fn icbrt_u128(x: u128) -> u128 {
    let mut lo = 0u128;
    let mut hi = 1u128 << 43;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let cube = mid.checked_mul(mid).and_then(|m| m.checked_mul(mid));
        if cube.map(|c| c <= x).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// H0: first 32 fractional bits of sqrt(p) for the first 8 primes.
fn initial_state() -> &'static [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    H.get_or_init(|| {
        let primes = first_primes(8);
        let mut h = [0u32; 8];
        for (i, &p) in primes.iter().enumerate() {
            // floor(sqrt(p) * 2^32) = isqrt(p << 64); keep fractional 32 bits.
            let s = isqrt_u128((p as u128) << 64);
            h[i] = (s & 0xffff_ffff) as u32;
        }
        h
    })
}

/// K: first 32 fractional bits of cbrt(p) for the first 64 primes.
fn round_constants() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            // floor(cbrt(p) * 2^32) = icbrt(p << 96); keep fractional 32 bits.
            let c = icbrt_u128((p as u128) << 96);
            k[i] = (c & 0xffff_ffff) as u32;
        }
        k
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn derived_constants_match_spec() {
        // Spot-check the published values of H0 and K.
        let h = initial_state();
        assert_eq!(h[0], 0x6a09e667);
        assert_eq!(h[7], 0x5be0cd19);
        let k = round_constants();
        assert_eq!(k[0], 0x428a2f98);
        assert_eq!(k[1], 0x71374491);
        assert_eq!(k[63], 0xc67178f2);
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // NIST test vector for a 56-byte message (forces two-block padding).
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn concat_equals_oneshot() {
        assert_eq!(sha256_concat(&[b"ab", b"c"]), sha256(b"abc"));
        assert_eq!(sha256_concat(&[]), sha256(b""));
    }

    #[test]
    fn million_a() {
        // NIST long test: one million 'a' characters.
        let mut h = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
