//! Fixed-width 256-bit unsigned integer.
//!
//! `U256` is the scalar/element representation used throughout the crypto
//! crate. It is a plain value type (4 little-endian `u64` limbs) with
//! wrapping, checked and overflowing arithmetic, shifts, comparisons and
//! byte/hex codecs. Modular arithmetic lives in [`crate::modarith`].

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Builds a `U256` from a `u64`.
    pub const fn from_u64(x: u64) -> Self {
        U256([x, 0, 0, 0])
    }

    /// Builds a `U256` from a `u128`.
    pub const fn from_u128(x: u128) -> Self {
        U256([x as u64, (x >> 64) as u64, 0, 0])
    }

    /// Returns the low 64 bits.
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits.
    pub const fn low_u128(&self) -> u128 {
        self.0[0] as u128 | ((self.0[1] as u128) << 64)
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// True if the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + 64 - self.0[i].leading_zeros();
            }
        }
        0
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < 256);
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Addition returning `(sum mod 2^256, carry)`.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        #[allow(clippy::needless_range_loop)] // limb arithmetic reads clearest indexed
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Subtraction returning `(diff mod 2^256, borrow)`.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        #[allow(clippy::needless_range_loop)] // limb arithmetic reads clearest indexed
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping addition modulo `2^256`.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction modulo `2^256`.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 256x256 -> 512-bit product, returned as `(low, high)`.
    pub fn widening_mul(&self, rhs: &U256) -> (U256, U256) {
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry: u64 = 0;
            for j in 0..4 {
                let acc =
                    t[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry as u128;
                t[i + j] = acc as u64;
                carry = (acc >> 64) as u64;
            }
            t[i + 4] = carry;
        }
        (
            U256([t[0], t[1], t[2], t[3]]),
            U256([t[4], t[5], t[6], t[7]]),
        )
    }

    /// Wrapping multiplication modulo `2^256`.
    pub fn wrapping_mul(&self, rhs: &U256) -> U256 {
        self.widening_mul(rhs).0
    }

    /// Left shift by `n` bits (zero filling); `n` must be < 256.
    pub fn shl(&self, n: u32) -> U256 {
        debug_assert!(n < 256);
        if n == 0 {
            return *self;
        }
        let limb = (n / 64) as usize;
        let sh = n % 64;
        let mut out = [0u64; 4];
        for i in (limb..4).rev() {
            let mut v = self.0[i - limb] << sh;
            if sh > 0 && i > limb {
                v |= self.0[i - limb - 1] >> (64 - sh);
            }
            out[i] = v;
        }
        U256(out)
    }

    /// Right shift by `n` bits; `n` must be < 256.
    pub fn shr(&self, n: u32) -> U256 {
        debug_assert!(n < 256);
        if n == 0 {
            return *self;
        }
        let limb = (n / 64) as usize;
        let sh = n % 64;
        let mut out = [0u64; 4];
        #[allow(clippy::needless_range_loop)] // limb arithmetic reads clearest indexed
        for i in 0..4 - limb {
            let mut v = self.0[i + limb] >> sh;
            if sh > 0 && i + limb + 1 < 4 {
                v |= self.0[i + limb + 1] << (64 - sh);
            }
            out[i] = v;
        }
        U256(out)
    }

    /// Big-endian byte encoding (32 bytes).
    pub fn to_bytes_be(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian 32-byte encoding.
    pub fn from_bytes_be(b: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(w);
        }
        U256(limbs)
    }

    /// Parses a hex string (no `0x` prefix, up to 64 nibbles).
    pub fn from_hex(s: &str) -> Option<U256> {
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut v = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            v = v.shl(4);
            v.0[0] |= d;
        }
        Some(v)
    }

    /// Lowercase hex encoding without leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = String::new();
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                s.push_str(&format!("{:016x}", self.0[i]));
            } else if self.0[i] != 0 {
                s.push_str(&format!("{:x}", self.0[i]));
                started = true;
            }
        }
        s
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for U256 {
    fn from(x: u64) -> Self {
        U256::from_u64(x)
    }
}

impl From<u128> for U256 {
    fn from(x: u128) -> Self {
        U256::from_u128(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let b = U256::from_u64(0xdead_beef);
        let (s, c) = a.overflowing_add(&b);
        assert!(!c);
        assert_eq!(s.wrapping_sub(&b), a);
    }

    #[test]
    fn overflow_carries() {
        let (s, c) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(c);
        assert!(s.is_zero());
        let (d, b) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(b);
        assert_eq!(d, U256::MAX);
    }

    #[test]
    fn mul_matches_u128() {
        let a = U256::from_u64(0xffff_ffff_ffff_fffe);
        let b = U256::from_u64(0xffff_ffff_ffff_fffd);
        let (lo, hi) = a.widening_mul(&b);
        let exact = 0xffff_ffff_ffff_fffeu128 * 0xffff_ffff_ffff_fffdu128;
        assert_eq!(lo.low_u128(), exact);
        assert!(hi.is_zero());
    }

    #[test]
    fn shifts() {
        let a = U256::from_u64(1);
        assert_eq!(a.shl(255).shr(255), a);
        assert_eq!(a.shl(64).0, [0, 1, 0, 0]);
        let b = U256([0, 0, 0, 1 << 63]);
        assert_eq!(b.shr(255), U256::ONE);
        assert_eq!(a.shl(0), a);
        assert_eq!(a.shr(0), a);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::MAX.bits(), 256);
        let x = U256::from_u64(0b1010);
        assert!(x.bit(1) && x.bit(3));
        assert!(!x.bit(0) && !x.bit(2));
    }

    #[test]
    fn bytes_roundtrip() {
        let a = U256([
            0x1122334455667788,
            0x99aabbccddeeff00,
            0xdeadbeefcafebabe,
            0x0123456789abcdef,
        ]);
        assert_eq!(U256::from_bytes_be(&a.to_bytes_be()), a);
        let be = a.to_bytes_be();
        assert_eq!(be[0], 0x01);
        assert_eq!(be[31], 0x88);
    }

    #[test]
    fn hex_roundtrip() {
        let a = U256::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(a.to_hex(), "deadbeefcafebabe0123456789abcdef");
        assert_eq!(U256::ZERO.to_hex(), "0");
        assert_eq!(U256::from_hex("0").unwrap(), U256::ZERO);
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("xyz").is_none());
    }

    #[test]
    fn ordering() {
        let a = U256([0, 0, 0, 1]);
        let b = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(a > b);
        assert!(U256::ZERO < U256::ONE);
    }
}
