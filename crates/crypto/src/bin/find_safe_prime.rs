//! One-off utility: search for a 256-bit safe prime p = 2q + 1 and a
//! generator of the order-q subgroup. Used to produce the constants
//! hardcoded in `group.rs` (which are re-verified by unit tests).
use pm_crypto::modarith::{is_probable_prime, Modulus};
use pm_crypto::u256::U256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(20180922); // arXiv date of the paper
    let mut tried = 0u64;
    loop {
        tried += 1;
        // Random 255-bit odd q with top bit set so p = 2q+1 is 256-bit.
        let mut limbs = [0u64; 4];
        for l in limbs.iter_mut() {
            *l = rng.gen();
        }
        limbs[0] |= 1;
        limbs[3] |= 1 << 62; // bit 254 set -> q in [2^254, 2^255)
        limbs[3] &= (1 << 63) - 1;
        let q = U256(limbs);
        // Cheap screens first.
        if !is_probable_prime(&q, 0, &mut rng) {
            continue;
        }
        let p = q.shl(1).wrapping_add(&U256::ONE);
        if !is_probable_prime(&p, 0, &mut rng) {
            continue;
        }
        // Full-strength confirmation.
        if !is_probable_prime(&q, 40, &mut rng) || !is_probable_prime(&p, 40, &mut rng) {
            continue;
        }
        let modp = Modulus::new(p);
        // Generator of the order-q subgroup: h^2 for small h, != 1.
        let mut g = U256::ZERO;
        for h in 2u64.. {
            let cand = modp.mul(&U256::from_u64(h), &U256::from_u64(h));
            if cand != U256::ONE {
                // order must be q: cand^q == 1 (guaranteed: squares form the
                // subgroup of order q), double check anyway.
                if modp.pow(&cand, &q) == U256::ONE {
                    g = cand;
                    break;
                }
            }
        }
        println!("tried {tried} candidates");
        println!("p = {}", p.to_hex());
        println!("q = {}", q.to_hex());
        println!("g = {}", g.to_hex());
        return;
    }
}
