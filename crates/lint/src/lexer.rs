//! A minimal hand-rolled Rust lexer: comment and literal scrubbing.
//!
//! The analyzer never parses Rust properly — it only needs to know,
//! for every character of a source file, whether that character is
//! *code*, a *comment*, or the inside of a *literal*. [`scrub`] makes
//! one pass over a file and produces:
//!
//! * a **cleaned** text of the same length and line structure as the
//!   input, in which every comment character and every string / char
//!   literal character (delimiters included) has been replaced by a
//!   space — so naive token scans on the cleaned text cannot be fooled
//!   by `"thread_rng"` in a string or `HashMap` in a doc comment;
//! * a side table of the **string literals** (offset, line, raw text)
//!   so rules that need literal values — the `derive_seed` label
//!   registry — can recover them;
//! * a side table of the **comments** so the `// lint:allow(<rule>)
//!   <reason>` markers can be recovered.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), block comments
//! with arbitrary nesting, plain strings with escapes, raw strings
//! with any number of `#`s (`r"…"`, `r#"…"#`, `r##"…"##`, …), byte
//! strings and raw byte strings, char and byte-char literals
//! (including `'\''`), lifetimes (`'a` is *not* a char literal), and
//! raw identifiers (`r#type` is *not* a raw string).

/// A string literal captured during scrubbing.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Char offset (into the cleaned text) of the opening delimiter.
    pub start: usize,
    /// Char offset just past the closing delimiter.
    pub end: usize,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// The raw contents between the delimiters (escapes unprocessed).
    pub text: String,
}

/// A comment captured during scrubbing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line where the comment opens.
    pub line: u32,
    /// The comment body (without the `//` / `/*` delimiters; block
    /// comment bodies keep their interior newlines).
    pub text: String,
}

/// The scrubbed form of one source file.
pub struct Scrubbed {
    /// Cleaned text: identical char count and newlines as the input,
    /// with comments and literals blanked to spaces.
    pub chars: Vec<char>,
    /// All string literals, in source order.
    pub strings: Vec<StrLit>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    line_starts: Vec<usize>,
}

impl Scrubbed {
    /// The 1-based line containing the cleaned-text char offset `idx`.
    pub fn line_at(&self, idx: usize) -> u32 {
        self.line_starts.partition_point(|s| *s <= idx) as u32
    }

    /// The cleaned text of a 1-based line, as a `String`.
    pub fn line_text(&self, line: u32) -> String {
        let i = (line as usize).saturating_sub(1);
        let start = match self.line_starts.get(i) {
            Some(s) => *s,
            None => return String::new(),
        };
        let end = self
            .line_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.chars.len());
        self.chars[start..end].iter().collect()
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scrubs one source file; see the module docs for the contract.
pub fn scrub(src: &str) -> Scrubbed {
    let input: Vec<char> = src.chars().collect();
    let n = input.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    // Whether the previously *kept* char could continue an identifier —
    // distinguishes the raw-string prefix in `r"x"` from the trailing
    // `r` of an identifier like `var` in `var "x"`-adjacent positions,
    // and keeps `r#type` a raw identifier rather than a raw string.
    let mut prev_ident = false;
    let mut i = 0usize;

    // Pushes `c` (or its blank) and maintains the line counter.
    macro_rules! push {
        (keep $c:expr) => {{
            let c = $c;
            out.push(c);
            if c == '\n' {
                line += 1;
            }
            prev_ident = is_ident_char(c);
        }};
        (blank $c:expr) => {{
            let c = $c;
            if c == '\n' {
                out.push('\n');
                line += 1;
            } else {
                out.push(' ');
            }
        }};
    }

    // Consumes a plain (possibly byte) string starting at the opening
    // quote `i`; returns the index just past the closing quote.
    macro_rules! eat_string {
        ($open:expr) => {{
            let open = $open;
            let lit_line = line;
            push!(blank input[open]); // opening quote
            let mut j = open + 1;
            let body_start = j;
            while j < n {
                if input[j] == '\\' && j + 1 < n {
                    push!(blank input[j]);
                    push!(blank input[j + 1]);
                    j += 2;
                    continue;
                }
                if input[j] == '"' {
                    break;
                }
                push!(blank input[j]);
                j += 1;
            }
            let text: String = input[body_start..j.min(n)].iter().collect();
            if j < n {
                push!(blank input[j]); // closing quote
                j += 1;
            }
            strings.push(StrLit {
                start: open,
                end: j,
                line: lit_line,
                text,
            });
            prev_ident = false;
            j
        }};
    }

    // Consumes a raw (possibly byte) string whose opening quote is at
    // `quote` with `hashes` trailing `#`s expected at the close;
    // `start` is the offset of the `r`/`b` prefix.
    macro_rules! eat_raw_string {
        ($start:expr, $quote:expr, $hashes:expr) => {{
            let (start, quote, hashes) = ($start, $quote, $hashes);
            let lit_line = line;
            for k in start..=quote {
                push!(blank input[k]);
            }
            let mut j = quote + 1;
            let body_start = j;
            let body_end;
            loop {
                if j >= n {
                    body_end = n;
                    break;
                }
                if input[j] == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if j + 1 + h >= n || input[j + 1 + h] != '#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        body_end = j;
                        for k in j..(j + 1 + hashes).min(n) {
                            push!(blank input[k]);
                        }
                        j += 1 + hashes;
                        break;
                    }
                }
                push!(blank input[j]);
                j += 1;
            }
            strings.push(StrLit {
                start,
                end: j,
                line: lit_line,
                text: input[body_start..body_end].iter().collect(),
            });
            prev_ident = false;
            j
        }};
    }

    while i < n {
        let c = input[i];
        let c1 = if i + 1 < n { input[i + 1] } else { '\0' };

        // Line comment (also covers /// and //! doc comments).
        if c == '/' && c1 == '/' {
            let start_line = line;
            let body_start = i + 2;
            let mut j = i;
            while j < n && input[j] != '\n' {
                push!(blank input[j]);
                j += 1;
            }
            comments.push(Comment {
                line: start_line,
                text: input[body_start.min(j)..j].iter().collect(),
            });
            i = j;
            continue;
        }

        // Block comment, nesting tracked.
        if c == '/' && c1 == '*' {
            let start_line = line;
            let body_start = i + 2;
            push!(blank input[i]);
            push!(blank input[i + 1]);
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut body_end = n;
            while j < n {
                if input[j] == '/' && j + 1 < n && input[j + 1] == '*' {
                    depth += 1;
                    push!(blank input[j]);
                    push!(blank input[j + 1]);
                    j += 2;
                } else if input[j] == '*' && j + 1 < n && input[j + 1] == '/' {
                    depth -= 1;
                    push!(blank input[j]);
                    push!(blank input[j + 1]);
                    j += 2;
                    if depth == 0 {
                        body_end = j - 2;
                        break;
                    }
                } else {
                    push!(blank input[j]);
                    j += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: input[body_start..body_end.min(n)].iter().collect(),
            });
            i = j;
            continue;
        }

        // Plain string.
        if c == '"' {
            i = eat_string!(i);
            continue;
        }

        // Raw string r"…" / r#"…"# — but not the raw identifier r#ident.
        if c == 'r' && !prev_ident {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < n && input[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && input[j] == '"' {
                i = eat_raw_string!(i, j, hashes);
                continue;
            }
        }

        // Byte string b"…", raw byte string br#"…"#, byte char b'x'.
        if c == 'b' && !prev_ident {
            if c1 == '"' {
                push!(blank input[i]);
                i = eat_string!(i + 1);
                continue;
            }
            if c1 == 'r' {
                let mut j = i + 2;
                let mut hashes = 0usize;
                while j < n && input[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && input[j] == '"' {
                    i = eat_raw_string!(i, j, hashes);
                    continue;
                }
            }
            if c1 == '\'' {
                // Byte char literal: blank b' then fall through to the
                // char-literal body below by consuming it here.
                push!(blank input[i]);
                i = eat_char(&input, i + 1, &mut |ch| push!(blank ch));
                continue;
            }
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = c1 == '\\'
                || (c1 != '\0' && i + 2 < n && input[i + 2] == '\'' && c1 != '\'')
                || c1 == '"';
            if is_char {
                i = eat_char(&input, i, &mut |ch| push!(blank ch));
                continue;
            }
            // Lifetime (or the rare `'…` we cannot classify): keep it.
            push!(keep c);
            i += 1;
            continue;
        }

        push!(keep c);
        i += 1;
    }

    let mut line_starts = vec![0usize];
    for (idx, c) in out.iter().enumerate() {
        if *c == '\n' {
            line_starts.push(idx + 1);
        }
    }
    Scrubbed {
        chars: out,
        strings,
        comments,
        line_starts,
    }
}

/// Consumes a char literal whose opening `'` is at `i`, blanking every
/// char through `emit`; returns the index just past the closing `'`.
fn eat_char(input: &[char], i: usize, emit: &mut dyn FnMut(char)) -> usize {
    let n = input.len();
    emit(input[i]); // opening '
    let mut j = i + 1;
    if j < n && input[j] == '\\' {
        emit(input[j]);
        j += 1;
        if j < n {
            emit(input[j]);
            j += 1;
        }
        // \u{…} escapes: consume through the closing brace.
        while j < n && input[j] != '\'' {
            emit(input[j]);
            j += 1;
        }
    } else if j < n {
        emit(input[j]);
        j += 1;
    }
    if j < n && input[j] == '\'' {
        emit(input[j]);
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cleaned(src: &str) -> String {
        scrub(src).chars.iter().collect()
    }

    #[test]
    fn line_comments_are_blanked_and_recorded() {
        let s = scrub("let x = 1; // thread_rng here\nlet y = 2;\n");
        let c: String = s.chars.iter().collect();
        assert!(!c.contains("thread_rng"));
        assert!(c.contains("let y = 2;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[0].text.contains("thread_rng"));
    }

    #[test]
    fn nested_block_comments_are_fully_stripped() {
        let src = "a /* outer /* inner thread_rng */ still outer */ b\n";
        let c = cleaned(src);
        assert!(!c.contains("thread_rng"));
        assert!(!c.contains("still outer"));
        assert!(c.starts_with("a "));
        assert!(c.trim_end().ends_with('b'));
    }

    #[test]
    fn block_comment_line_numbers_survive() {
        let s = scrub("x\n/* two\nlines */\ny\n");
        // Same newline structure: 'y' is still on line 4.
        let pos = s.chars.iter().position(|c| *c == 'y').unwrap();
        assert_eq!(s.line_at(pos), 4);
    }

    #[test]
    fn strings_are_blanked_but_captured() {
        let s = scrub("let u = \"https://x/thread_rng\"; let v = 1;\n");
        let c: String = s.chars.iter().collect();
        // The `//` inside the string must not start a comment.
        assert!(c.contains("let v = 1;"));
        assert!(!c.contains("thread_rng"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].text, "https://x/thread_rng");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = scrub(r#"let a = "he said \"hi\" // x"; let b = 2;"#);
        let c: String = s.chars.iter().collect();
        assert!(c.contains("let b = 2;"));
        assert_eq!(s.strings[0].text, r#"he said \"hi\" // x"#);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrub("let r = r##\"quote \"# SystemTime::now() \"##; let q = 3;\n");
        let c: String = s.chars.iter().collect();
        assert!(c.contains("let q = 3;"));
        assert!(!c.contains("SystemTime"));
        assert_eq!(s.strings[0].text, "quote \"# SystemTime::now() ");
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let c = cleaned("let r#type = 1; let after = 2;\n");
        assert!(c.contains("r#type"));
        assert!(c.contains("let after = 2;"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let s = scrub("let b = b\"from_entropy\"; let c = b'\"'; let d = br#\"x\"#; let e = 4;\n");
        let c: String = s.chars.iter().collect();
        assert!(c.contains("let e = 4;"));
        assert!(!c.contains("from_entropy"));
        assert_eq!(s.strings[0].text, "from_entropy");
    }

    #[test]
    fn char_literals_including_quote_and_escape() {
        let c = cleaned("let a = '\"'; let b = '\\''; let d = '\\u{41}'; let e = 5;\n");
        assert!(c.contains("let e = 5;"));
        assert!(!c.contains('"'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = cleaned("fn f<'a>(x: &'a str) -> &'static str { x } let g = 6;\n");
        assert!(c.contains("'a"));
        assert!(c.contains("'static"));
        assert!(c.contains("let g = 6;"));
    }

    #[test]
    fn string_offsets_index_the_cleaned_text() {
        let s = scrub("call(\"label\", 2)\n");
        let lit = &s.strings[0];
        assert_eq!(s.chars[lit.start - 1], '(');
        assert_eq!(s.chars[lit.end], ',');
    }
}
