//! The `pm-lint` gate binary.
//!
//! ```text
//! pm-lint [--root DIR] [--json PATH]
//! ```
//!
//! Analyzes every workspace source file under `--root` (default: the
//! current directory), prints findings as `file:line rule message`,
//! optionally exports them as JSON, and exits nonzero if any finding
//! survives. `make lint` runs this with `--json target/lint.json`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                i += 1;
                root = PathBuf::from(&args[i]);
            }
            "--json" if i + 1 < args.len() => {
                i += 1;
                json = Some(PathBuf::from(&args[i]));
            }
            "--help" | "-h" => {
                eprintln!("usage: pm-lint [--root DIR] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pm-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let findings = match pm_lint::analyze_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pm-lint: {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        println!("{}:{} {} {}", f.file, f.line, f.rule, f.message);
    }
    if let Some(path) = &json {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, pm_lint::render_json(&findings)) {
            eprintln!("pm-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if findings.is_empty() {
        eprintln!("pm-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("pm-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
