//! The six contract rules, the allow-marker grammar, and the
//! `#[cfg(test)]` region detector.
//!
//! Rules operate on a [`Scrubbed`] file (comments and literals already
//! blanked, see [`crate::lexer`]) plus the file's path relative to the
//! workspace root — path prefixes decide which rules apply where:
//!
//! | rule            | scope                                                      |
//! |-----------------|------------------------------------------------------------|
//! | `entropy`       | everywhere scanned (vendor and bench are never scanned)    |
//! | `unordered-map` | `src/` of `psc`, `privcount`, `net`, `study`, `core`       |
//! | `seed-label`    | everywhere scanned, minus `tests/`/`benches/` directories  |
//! | `panic`         | `src/` of `psc`, `privcount`, `net`, `study`               |
//! | `obs-readback`  | `src/` of `psc`, `privcount`, `net`                        |
//! | `raw-socket`    | everywhere scanned                                         |
//!
//! Two rules carry structural sanctions. The `entropy` rule permits
//! `Instant::now` and `SystemTime::now` in `crates/obs/src/clock.rs` —
//! the *only* wall-clock read site in the workspace, feeding the
//! profiling plane that is excluded from every transcript. The
//! `raw-socket` rule permits `std::net` / `TcpListener` / `TcpStream` /
//! `UdpSocket` in `crates/net/src/wire.rs` — the *only* socket site in
//! the workspace, so every byte that leaves a process is carried by the
//! one audited wire backend behind the `Fabric` trait. No `lint:allow`
//! marker is involved in either sanction; any other file reading the
//! clock or opening a socket still fails the gate.
//!
//! `obs-readback` forbids the protocol crates from *reading* the
//! metrics registry (`read_snapshot` / `read_counter`): protocol code
//! may only write counters, never branch on them — a readback would
//! let observability feed back into transcripts.
//!
//! `unordered-map`, `seed-label`, and `panic` additionally skip
//! `#[cfg(test)]` / `#[test]` regions: tests may unwrap and hash
//! freely. The `entropy` rule applies inside tests too — a test that
//! reads the clock or the OS entropy pool is nondeterministic in
//! exactly the way the contract forbids.
//!
//! A finding is suppressed by a marker comment on the same line or the
//! line directly above:
//!
//! ```text
//! // lint:allow(<rule>) <reason>
//! ```
//!
//! The reason is mandatory; a marker without one (or naming an unknown
//! rule) is itself reported under the `allow-marker` rule and does not
//! suppress anything — the gate cannot be waved through silently.

use crate::lexer::Scrubbed;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the analyzed root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (`entropy`, `unordered-map`, `seed-label`,
    /// `panic`, `obs-readback`, `raw-socket`, or `allow-marker`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Rule names.
pub const RULE_ENTROPY: &str = "entropy";
pub const RULE_UNORDERED: &str = "unordered-map";
pub const RULE_SEED: &str = "seed-label";
pub const RULE_PANIC: &str = "panic";
pub const RULE_OBS: &str = "obs-readback";
pub const RULE_SOCKET: &str = "raw-socket";
pub const RULE_MARKER: &str = "allow-marker";

const KNOWN_RULES: [&str; 6] = [
    RULE_ENTROPY,
    RULE_UNORDERED,
    RULE_SEED,
    RULE_PANIC,
    RULE_OBS,
    RULE_SOCKET,
];

/// A `derive_seed` label collected for the cross-file registry.
#[derive(Debug, Clone)]
pub struct SeedLabel {
    /// Normalized label: every `{…}` placeholder collapsed to `{}`.
    pub label: String,
    pub file: String,
    pub line: u32,
    /// Whether the call site carries a valid `lint:allow(seed-label)`.
    pub allowed: bool,
}

/// A parsed allow marker (valid or not).
#[derive(Debug, Clone)]
struct Marker {
    line: u32,
    rule: String,
    valid: bool,
}

/// Everything rule evaluation produced for one file.
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub seed_labels: Vec<SeedLabel>,
}

fn in_unordered_scope(rel: &str) -> bool {
    const CRATES: [&str; 5] = [
        "crates/psc/src/",
        "crates/privcount/src/",
        "crates/net/src/",
        "crates/study/src/",
        "crates/core/src/",
    ];
    CRATES.iter().any(|p| rel.starts_with(p))
}

fn in_panic_scope(rel: &str) -> bool {
    const CRATES: [&str; 4] = [
        "crates/psc/src/",
        "crates/privcount/src/",
        "crates/net/src/",
        "crates/study/src/",
    ];
    CRATES.iter().any(|p| rel.starts_with(p))
}

fn in_obs_readback_scope(rel: &str) -> bool {
    const CRATES: [&str; 3] = [
        "crates/psc/src/",
        "crates/privcount/src/",
        "crates/net/src/",
    ];
    CRATES.iter().any(|p| rel.starts_with(p))
}

/// The one file structurally sanctioned to read the wall clock: the
/// observability crate's clock module, which confines every
/// `Instant::now` in the workspace behind the profiling plane.
fn is_sanctioned_clock(rel: &str) -> bool {
    rel == "crates/obs/src/clock.rs"
}

/// The one file structurally sanctioned to open sockets: the net
/// crate's wire backend, which confines every `std::net` use in the
/// workspace behind the `Fabric` trait.
fn is_sanctioned_socket(rel: &str) -> bool {
    rel == "crates/net/src/wire.rs"
}

fn in_tests_dir(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Parses the allow markers out of a file's comments; invalid markers
/// are reported as findings.
fn parse_markers(rel: &str, scrubbed: &Scrubbed, findings: &mut Vec<Finding>) -> Vec<Marker> {
    let mut markers = Vec::new();
    for comment in &scrubbed.comments {
        for (off, text_line) in comment.text.split('\n').enumerate() {
            let line = comment.line + off as u32;
            let trimmed = text_line.trim_start_matches(['*', ' ', '\t']);
            let Some(rest) = trimmed.strip_prefix("lint:allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                findings.push(Finding {
                    file: rel.to_string(),
                    line,
                    rule: RULE_MARKER,
                    message: "unclosed lint:allow(…) marker".to_string(),
                });
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..].trim();
            let mut valid = true;
            if !KNOWN_RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line,
                    rule: RULE_MARKER,
                    message: format!("lint:allow names unknown rule `{rule}`"),
                });
                valid = false;
            }
            if reason.is_empty() {
                findings.push(Finding {
                    file: rel.to_string(),
                    line,
                    rule: RULE_MARKER,
                    message: format!("lint:allow({rule}) without a justification"),
                });
                valid = false;
            }
            markers.push(Marker { line, rule, valid });
        }
    }
    markers
}

/// `#[cfg(test)]` / `#[test]` item regions as (start, end) line ranges.
fn test_regions(scrubbed: &Scrubbed) -> Vec<(u32, u32)> {
    let chars = &scrubbed.chars;
    let n = chars.len();
    let mut regions = Vec::new();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let pat: Vec<char> = attr.chars().collect();
        let mut i = 0usize;
        while i + pat.len() <= n {
            if chars[i..i + pat.len()] != pat[..] {
                i += 1;
                continue;
            }
            let start_line = scrubbed.line_at(i);
            let mut j = i + pat.len();
            // Skip whitespace and any further attributes.
            loop {
                while j < n && chars[j].is_whitespace() {
                    j += 1;
                }
                if j < n && chars[j] == '#' {
                    while j < n && chars[j] != ']' {
                        j += 1;
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            // The item body: first `{` brace-matched, or a `;` item.
            while j < n && chars[j] != '{' && chars[j] != ';' {
                j += 1;
            }
            let end = if j < n && chars[j] == '{' {
                let mut depth = 0i32;
                let mut k = j;
                while k < n {
                    match chars[k] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k
            } else {
                j
            };
            regions.push((start_line, scrubbed.line_at(end.min(n.saturating_sub(1)))));
            i += pat.len();
        }
    }
    regions
}

fn in_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|(a, b)| line >= *a && line <= *b)
}

/// Collapses `{…}` format placeholders to `{}` (with `{{` / `}}`
/// escapes preserved as literal braces) so `"day{d}"` and
/// `"day{}"` register as the same label.
pub fn normalize_label(raw: &str) -> String {
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '{' if chars.get(i + 1) == Some(&'{') => {
                out.push('{');
                i += 2;
            }
            '}' if chars.get(i + 1) == Some(&'}') => {
                out.push('}');
                i += 2;
            }
            '{' => {
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                i += 1;
                out.push_str("{}");
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

struct Ident {
    text: String,
    start: usize,
    end: usize,
    line: u32,
}

fn idents(scrubbed: &Scrubbed) -> Vec<Ident> {
    let chars = &scrubbed.chars;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Ident {
                text: chars[start..i].iter().collect(),
                start,
                end: i,
                line: scrubbed.line_at(start),
            });
        } else {
            i += 1;
        }
    }
    out
}

fn next_nonws(chars: &[char], mut i: usize) -> Option<(usize, char)> {
    while i < chars.len() {
        if !chars[i].is_whitespace() {
            return Some((i, chars[i]));
        }
        i += 1;
    }
    None
}

fn prev_nonws(chars: &[char], i: usize) -> Option<char> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !chars[j].is_whitespace() {
            return Some(chars[j]);
        }
    }
    None
}

/// True when the next tokens after `end` spell `:: now`.
fn followed_by_colons_now(chars: &[char], end: usize) -> bool {
    let Some((i, c)) = next_nonws(chars, end) else {
        return false;
    };
    if c != ':' || chars.get(i + 1) != Some(&':') {
        return false;
    }
    let Some((j, c2)) = next_nonws(chars, i + 2) else {
        return false;
    };
    if !(c2.is_alphabetic() || c2 == '_') {
        return false;
    }
    let mut k = j;
    while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
        k += 1;
    }
    chars[j..k].iter().collect::<String>() == "now"
}

/// True when the tokens before `start` spell `std ::` — i.e. the ident
/// at `start` is the `net` of a `std::net` path.
fn preceded_by_std_colons(chars: &[char], start: usize) -> bool {
    let mut j = start;
    // Expect `::` immediately before (whitespace-tolerant).
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    if j < 2 || chars[j - 1] != ':' || chars[j - 2] != ':' {
        return false;
    }
    j -= 2;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
        j -= 1;
    }
    chars[j..end].iter().collect::<String>() == "std"
}

/// Runs every rule against one scrubbed file.
pub fn analyze_file(rel: &str, scrubbed: &Scrubbed) -> FileReport {
    let mut findings = Vec::new();
    let markers = parse_markers(rel, scrubbed, &mut findings);
    let regions = test_regions(scrubbed);
    let tests_dir = in_tests_dir(rel);
    let allowed = |rule: &str, line: u32| {
        markers
            .iter()
            .any(|m| m.valid && m.rule == rule && (m.line == line || m.line + 1 == line))
    };
    let mut seed_labels = Vec::new();

    for tok in idents(scrubbed) {
        let chars = &scrubbed.chars;
        match tok.text.as_str() {
            // Rule 1: entropy / wall-clock ban.
            "thread_rng" | "from_entropy" if !allowed(RULE_ENTROPY, tok.line) => {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_ENTROPY,
                    message: format!(
                        "`{}` draws OS entropy; every RNG must be seeded through \
                         derive_seed so runs replay bit-identically",
                        tok.text
                    ),
                });
            }
            "SystemTime" | "Instant"
                if followed_by_colons_now(chars, tok.end)
                    && !is_sanctioned_clock(rel)
                    && !allowed(RULE_ENTROPY, tok.line) =>
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_ENTROPY,
                    message: format!(
                        "`{}::now` reads the wall clock; simulated time must come \
                         from the event stream, not the host",
                        tok.text
                    ),
                });
            }
            // Rule 2: unordered iteration hazard.
            "HashMap" | "HashSet"
                if in_unordered_scope(rel)
                    && !tests_dir
                    && !in_region(&regions, tok.line)
                    && !allowed(RULE_UNORDERED, tok.line) =>
            {
                let line_text = scrubbed.line_text(tok.line);
                let t = line_text.trim_start();
                if t.starts_with("use ") || t.starts_with("pub use ") {
                    continue; // imports are not hazards; usage sites are.
                }
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_UNORDERED,
                    message: format!(
                        "`{}` in a protocol/report crate: iteration order is \
                         unspecified — use BTreeMap/BTreeSet (or sorted iteration) \
                         or justify with `lint:allow(unordered-map) <reason>`",
                        tok.text
                    ),
                });
            }
            // Rule 3: derive_seed label registry (collection pass).
            "derive_seed" => {
                if tests_dir || in_region(&regions, tok.line) {
                    continue;
                }
                let Some((open, c)) = next_nonws(chars, tok.end) else {
                    continue;
                };
                if c != '(' {
                    continue;
                }
                let mut depth = 0i32;
                let mut close = open;
                while close < chars.len() {
                    match chars[close] {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    close += 1;
                }
                if let Some(lit) = scrubbed
                    .strings
                    .iter()
                    .find(|s| s.start > open && s.end <= close)
                {
                    seed_labels.push(SeedLabel {
                        label: normalize_label(&lit.text),
                        file: rel.to_string(),
                        line: tok.line,
                        allowed: allowed(RULE_SEED, tok.line),
                    });
                }
            }
            // Rule 4: panic budget.
            "unwrap" | "expect"
                if in_panic_scope(rel)
                    && !tests_dir
                    && !in_region(&regions, tok.line)
                    && prev_nonws(chars, tok.start) == Some('.')
                    && matches!(next_nonws(chars, tok.end), Some((_, '(')))
                    && !allowed(RULE_PANIC, tok.line) =>
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_PANIC,
                    message: format!(
                        "`.{}()` on a protocol path: thread the error through the \
                         Result/RoundStatus flow, or justify with \
                         `lint:allow(panic) <reason>`",
                        tok.text
                    ),
                });
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if in_panic_scope(rel)
                    && !tests_dir
                    && !in_region(&regions, tok.line)
                    && matches!(next_nonws(chars, tok.end), Some((_, '!')))
                    && !allowed(RULE_PANIC, tok.line) =>
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_PANIC,
                    message: format!(
                        "`{}!` on a protocol path: abort the round via the error \
                         flow, or justify with `lint:allow(panic) <reason>`",
                        tok.text
                    ),
                });
            }
            // Rule 5: metrics-registry readback ban in protocol crates.
            "read_snapshot" | "read_counter"
                if in_obs_readback_scope(rel)
                    && !tests_dir
                    && !in_region(&regions, tok.line)
                    && !allowed(RULE_OBS, tok.line) =>
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_OBS,
                    message: format!(
                        "`{}` reads the metrics registry from a protocol crate: \
                         protocol code may only write counters, never branch on \
                         them — readback lets observability feed back into \
                         transcripts",
                        tok.text
                    ),
                });
            }
            // Rule 6: raw sockets confined to the wire backend.
            "TcpListener" | "TcpStream" | "UdpSocket"
                if !is_sanctioned_socket(rel) && !allowed(RULE_SOCKET, tok.line) =>
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_SOCKET,
                    message: format!(
                        "`{}` outside crates/net/src/wire.rs: every byte that \
                         leaves a process must go through the audited wire \
                         backend behind the Fabric trait",
                        tok.text
                    ),
                });
            }
            "net"
                if preceded_by_std_colons(chars, tok.start)
                    && !is_sanctioned_socket(rel)
                    && !allowed(RULE_SOCKET, tok.line) =>
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: RULE_SOCKET,
                    message: "`std::net` outside crates/net/src/wire.rs: every byte \
                              that leaves a process must go through the audited wire \
                              backend behind the Fabric trait"
                        .to_string(),
                });
            }
            _ => {}
        }
    }

    FileReport {
        findings,
        seed_labels,
    }
}

/// The cross-file pass: every normalized label used at more than one
/// (non-allowed) call site aliases two logically independent RNG
/// streams and is reported at each site.
pub fn seed_registry_findings(labels: &[SeedLabel]) -> Vec<Finding> {
    let mut by_label: std::collections::BTreeMap<&str, Vec<&SeedLabel>> =
        std::collections::BTreeMap::new();
    for l in labels {
        by_label.entry(l.label.as_str()).or_default().push(l);
    }
    let mut findings = Vec::new();
    for (label, sites) in by_label {
        if sites.len() < 2 {
            continue;
        }
        for site in &sites {
            if site.allowed {
                continue;
            }
            let other = sites
                .iter()
                .find(|s| s.file != site.file || s.line != site.line)
                .map(|s| format!("{}:{}", s.file, s.line))
                .unwrap_or_default();
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                rule: RULE_SEED,
                message: format!(
                    "derive_seed label `{label}` is also used at {other}; duplicate \
                     labels alias two logically independent RNG streams — make every \
                     label unique"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    #[test]
    fn normalize_collapses_placeholders() {
        assert_eq!(normalize_label("day{d}"), "day{}");
        assert_eq!(normalize_label("day{}"), "day{}");
        assert_eq!(normalize_label("net/day{d}/x{i}"), "net/day{}/x{}");
        assert_eq!(normalize_label("lit {{brace}}"), "lit {brace}");
        assert_eq!(normalize_label("plain"), "plain");
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = scrub(src);
        let r = test_regions(&s);
        assert_eq!(r.len(), 1);
        assert!(in_region(&r, 3));
        assert!(in_region(&r, 4));
        assert!(!in_region(&r, 1));
        assert!(!in_region(&r, 6));
    }

    #[test]
    fn marker_without_reason_is_reported_and_inert() {
        let src = "// lint:allow(panic)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let s = scrub(src);
        let rep = analyze_file("crates/psc/src/x.rs", &s);
        let rules: Vec<&str> = rep.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RULE_MARKER));
        assert!(rules.contains(&RULE_PANIC));
    }

    #[test]
    fn valid_marker_suppresses_same_and_next_line() {
        let src = "// lint:allow(panic) infallible by construction\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let s = scrub(src);
        let rep = analyze_file("crates/psc/src/x.rs", &s);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn unknown_rule_marker_is_reported() {
        let src = "// lint:allow(hashbrown) because\nfn f() {}\n";
        let s = scrub(src);
        let rep = analyze_file("crates/psc/src/x.rs", &s);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, RULE_MARKER);
    }

    #[test]
    fn use_lines_are_not_unordered_findings() {
        let src = "use std::collections::HashMap;\nfn f() { let _: HashMap<u8, u8>; }\n";
        let s = scrub(src);
        let rep = analyze_file("crates/net/src/x.rs", &s);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].line, 2);
    }

    #[test]
    fn seed_labels_are_collected_and_deduped() {
        let a = scrub("fn a(s: u64) -> u64 { derive_seed(s, \"net/day{d}\") }\n");
        let b = scrub("fn b(s: u64) -> u64 { derive_seed(s, &format!(\"net/day{x}\")) }\n");
        let ra = analyze_file("crates/torsim/src/a.rs", &a);
        let rb = analyze_file("crates/torsim/src/b.rs", &b);
        let mut labels = ra.seed_labels;
        labels.extend(rb.seed_labels);
        assert_eq!(labels.len(), 2);
        let dups = seed_registry_findings(&labels);
        assert_eq!(dups.len(), 2);
        assert!(dups[0].message.contains("net/day{}"));
    }

    #[test]
    fn entropy_applies_even_in_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = rand::thread_rng(); }\n}\n";
        let s = scrub(src);
        let rep = analyze_file("crates/torsim/src/x.rs", &s);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, RULE_ENTROPY);
    }

    #[test]
    fn raw_sockets_flag_everywhere_but_the_wire_backend() {
        let src = "use std::net::TcpListener;\nfn f() { let _ = TcpStream::connect(\"x\"); }\n";
        let s = scrub(src);
        // Two idents on line 1 (`net`, `TcpListener`), one on line 2.
        let rep = analyze_file("crates/psc/src/x.rs", &s);
        assert_eq!(rep.findings.len(), 3, "{:?}", rep.findings);
        assert!(rep.findings.iter().all(|f| f.rule == RULE_SOCKET));
        // The sanctioned wire backend is exempt, structurally.
        let rep = analyze_file("crates/net/src/wire.rs", &s);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn raw_socket_applies_in_test_regions_and_honors_markers() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::net::UdpSocket::bind(\"x\"); }\n}\n";
        let s = scrub(src);
        let rep = analyze_file("crates/torsim/src/x.rs", &s);
        assert_eq!(rep.findings.len(), 2, "{:?}", rep.findings); // `net` + `UdpSocket`
        assert!(rep.findings.iter().all(|f| f.rule == RULE_SOCKET));
        let allowed = "// lint:allow(raw-socket) test double for the wire backend\n\
                       fn f() { let _ = TcpListener::bind(\"x\"); }\n";
        let rep = analyze_file("crates/torsim/src/x.rs", &scrub(allowed));
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn non_std_net_idents_do_not_flag() {
        // `net` not preceded by `std::` (e.g. the pm_net crate path)
        // is not a socket use.
        let src = "use pm_net::transport::Switchboard;\nfn f(net: u8) -> u8 { net }\n";
        let s = scrub(src);
        let rep = analyze_file("crates/psc/src/x.rs", &s);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn instant_now_flags_but_bare_instant_does_not() {
        let src = "fn f(i: Instant) -> Instant { i }\nfn g() { let _ = Instant::now(); }\n";
        let s = scrub(src);
        let rep = analyze_file("crates/torsim/src/x.rs", &s);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].line, 2);
    }
}
