//! `pm-lint` — workspace static analysis for the determinism &
//! robustness contracts.
//!
//! Every guarantee this reproduction makes — bit-identical transcripts
//! across thread and shard counts, grouping-independent ground truth,
//! abort-don't-panic rounds — is dynamic by nature: a test has to get
//! lucky enough to exercise a violation. This crate turns the
//! contracts into a machine-checked gate that runs on every source
//! file of the workspace, with no dependencies (not even `syn`): a
//! hand-rolled lexer ([`lexer`]) blanks comments and literals, and a
//! token scan ([`rules`]) drives six cross-file rules:
//!
//! 1. **entropy** — `thread_rng`, `from_entropy`, `SystemTime::now`,
//!    and `Instant::now` are forbidden everywhere the analyzer scans
//!    (`crates/vendor` and `crates/bench` are excluded — benches may
//!    time, vendored code is not ours). One structural sanction:
//!    `crates/obs/src/clock.rs` may read the wall clock — it is the
//!    single clock site feeding the profiling plane, which is excluded
//!    from every transcript.
//! 2. **unordered-map** — `HashMap`/`HashSet` in the protocol/report
//!    crates (`psc`, `privcount`, `net`, `study`, `core`) must be
//!    converted to ordered containers or carry a justification marker:
//!    an unordered iteration feeding a transcript or report is exactly
//!    the class of bug the shard-invariance suites exist to catch.
//! 3. **seed-label** — every literal or format-string label passed to
//!    `derive_seed` across the workspace is collected into a registry;
//!    two distinct call sites sharing one (normalized) label alias two
//!    logically independent RNG streams and fail the gate.
//! 4. **panic** — `.unwrap()`, `.expect(…)`, and `panic!`-family
//!    macros in protocol round paths (`psc`, `privcount`, `net`,
//!    `study`) must carry a justification marker or be converted to
//!    the threaded `Result`/`RoundStatus` flow.
//! 5. **obs-readback** — the protocol crates (`psc`, `privcount`,
//!    `net`) must never call `read_snapshot` or `read_counter`:
//!    protocol code writes metrics, it does not branch on them — a
//!    readback would let observability feed back into transcripts.
//! 6. **raw-socket** — `std::net` (`TcpListener`, `TcpStream`,
//!    `UdpSocket`) is forbidden everywhere the analyzer scans, test
//!    regions included: real I/O anywhere else would silently escape
//!    the deterministic fault and schedule machinery. One structural
//!    sanction, mirroring the clock: `crates/net/src/wire.rs` — the
//!    socket-backed wire fabric — is the single file allowed to open
//!    sockets.
//!
//! Suppression is explicit and audited: `// lint:allow(<rule>)
//! <reason>` on the offending line or the line above, with the reason
//! mandatory (see [`rules`] for the grammar). Test code
//! (`#[cfg(test)]` regions, `tests/`, `benches/`) is exempt from rules
//! 2–5 but not from rules 1 and 6.
//!
//! The `pm-lint` binary prints findings as `file:line rule message`,
//! exports machine-readable JSON via `--json PATH`, and exits nonzero
//! on any unallowed finding. Its own test suite runs the analyzer over
//! `fixtures/` (a mini-workspace of seeded violations, asserting each
//! is reported exactly once) and over the real workspace (asserting it
//! is clean) — the gate cannot rot silently.

pub mod lexer;
pub mod rules;

pub use rules::Finding;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned, relative to the analyzed root.
const EXCLUDED_PREFIXES: [&str; 4] = [
    "target/",
    "crates/vendor/",
    "crates/bench/",
    "crates/lint/fixtures/",
];

/// Collects every `.rs` file under `root` (sorted, exclusions applied)
/// as root-relative `/`-separated paths.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = relative(root, &path);
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name.starts_with('.') {
                    continue;
                }
                if EXCLUDED_PREFIXES
                    .iter()
                    .any(|p| rel == p.trim_end_matches('/') || rel.starts_with(p))
                {
                    continue;
                }
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyzes every source file under `root` and returns the sorted
/// findings (file, line, rule).
pub fn analyze_root(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut seed_labels = Vec::new();
    for path in collect_sources(root)? {
        let rel = relative(root, &path);
        let src = fs::read_to_string(&path)?;
        let scrubbed = lexer::scrub(&src);
        let report = rules::analyze_file(&rel, &scrubbed);
        findings.extend(report.findings);
        seed_labels.extend(report.seed_labels);
    }
    findings.extend(rules::seed_registry_findings(&seed_labels));
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Renders findings as a JSON document (hand-rolled — the gate stays
/// dependency-free).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"total\": {}\n}}\n", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = vec![Finding {
            file: "a.rs".into(),
            line: 3,
            rule: rules::RULE_ENTROPY,
            message: "say \"hi\"\nback".into(),
        }];
        let j = render_json(&f);
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"total\": 1"));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let j = render_json(&[]);
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"total\": 0"));
    }
}
