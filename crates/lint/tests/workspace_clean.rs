//! The gate itself, as a test: the real workspace must be lint-clean.
//! This is the same analysis `make lint` runs — keeping it in the test
//! suite means `cargo test --workspace` already enforces the
//! determinism & robustness contracts.

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = pm_lint::analyze_root(&root).expect("workspace readable");
    let rendered: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} {} {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "the workspace violates the determinism/robustness contracts:\n{}",
        rendered.join("\n")
    );
}
