//! The gate's self-test: every violation seeded under `fixtures/`
//! must be reported exactly once, and nothing else may fire — if the
//! analyzer rots (a lexer regression swallowing a rule, a scope check
//! excluding too much), this suite fails instead of the gate silently
//! passing everything.

use std::path::Path;

fn fixture_findings() -> Vec<pm_lint::Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    pm_lint::analyze_root(&root).expect("fixtures readable")
}

#[test]
fn every_seeded_violation_is_reported_exactly_once() {
    let found: Vec<(String, u32, &str)> = fixture_findings()
        .into_iter()
        .map(|f| (f.file, f.line, f.rule))
        .collect();
    let expected: Vec<(String, u32, &str)> = [
        ("crates/obs/src/bad_profile.rs", 6, "entropy"),
        ("crates/privcount/src/bad_maps.rs", 7, "unordered-map"),
        ("crates/privcount/src/bad_maps.rs", 10, "unordered-map"),
        ("crates/privcount/src/bad_maps.rs", 11, "unordered-map"),
        ("crates/privcount/src/bad_maps.rs", 19, "allow-marker"),
        ("crates/privcount/src/bad_maps.rs", 22, "allow-marker"),
        ("crates/psc/src/bad_panics.rs", 4, "panic"),
        ("crates/psc/src/bad_panics.rs", 5, "panic"),
        ("crates/psc/src/bad_panics.rs", 7, "panic"),
        ("crates/psc/src/bad_panics.rs", 10, "panic"),
        ("crates/psc/src/bad_readback.rs", 5, "obs-readback"),
        ("crates/psc/src/bad_readback.rs", 7, "obs-readback"),
        ("crates/psc/src/bad_sockets.rs", 4, "raw-socket"),
        ("crates/psc/src/bad_sockets.rs", 4, "raw-socket"),
        ("crates/psc/src/bad_sockets.rs", 7, "raw-socket"),
        ("crates/torsim/src/bad_entropy.rs", 4, "entropy"),
        ("crates/torsim/src/bad_entropy.rs", 9, "entropy"),
        ("crates/torsim/src/bad_entropy.rs", 10, "entropy"),
        ("crates/torsim/src/bad_entropy.rs", 15, "entropy"),
        ("crates/torsim/src/bad_seeds.rs", 4, "seed-label"),
        ("crates/torsim/src/bad_seeds.rs", 8, "seed-label"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r))
    .collect();
    assert_eq!(found, expected);
}

#[test]
fn sanctioned_clock_produces_no_findings() {
    // `crates/obs/src/clock.rs` is the one file allowed to read the
    // wall clock; the identical calls in `bad_profile.rs` fire.
    let noise: Vec<_> = fixture_findings()
        .into_iter()
        .filter(|f| f.file.ends_with("clock.rs"))
        .collect();
    assert!(noise.is_empty(), "{noise:#?}");
}

#[test]
fn sanctioned_wire_backend_produces_no_findings() {
    // `crates/net/src/wire.rs` is the one file allowed to open raw
    // std sockets; identical calls in `bad_sockets.rs` fire.
    let noise: Vec<_> = fixture_findings()
        .into_iter()
        .filter(|f| f.file.ends_with("net/src/wire.rs"))
        .collect();
    assert!(noise.is_empty(), "{noise:#?}");
}

#[test]
fn lexer_edge_cases_produce_no_findings() {
    let noise: Vec<_> = fixture_findings()
        .into_iter()
        .filter(|f| f.file.contains("lexer_edges"))
        .collect();
    assert!(noise.is_empty(), "{noise:#?}");
}

#[test]
fn duplicate_seed_labels_name_each_other() {
    let seeds: Vec<_> = fixture_findings()
        .into_iter()
        .filter(|f| f.rule == "seed-label")
        .collect();
    assert_eq!(seeds.len(), 2);
    // Each site points at the other, under the normalized label.
    assert!(seeds[0].message.contains("net/day{}"));
    assert!(seeds[0].message.contains("bad_seeds.rs:8"));
    assert!(seeds[1].message.contains("bad_seeds.rs:4"));
}

#[test]
fn json_export_round_trips_the_count() {
    let findings = fixture_findings();
    let json = pm_lint::render_json(&findings);
    assert!(json.contains(&format!("\"total\": {}", findings.len())));
    assert!(json.contains("\"rule\": \"entropy\""));
    assert!(json.contains("\"rule\": \"panic\""));
    assert!(json.contains("\"rule\": \"obs-readback\""));
    assert!(json.contains("\"rule\": \"raw-socket\""));
}
