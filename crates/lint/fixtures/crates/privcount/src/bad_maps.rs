//! Seeded violations: the unordered-iteration hazard (rule 2) and
//! invalid allow markers (the `allow-marker` rule).

use std::collections::{HashMap, HashSet};

pub struct Index {
    by_code: HashMap<u32, usize>,
}

pub fn build() -> HashMap<u32, usize> {
    HashMap::new()
}

pub struct Dedup {
    // lint:allow(unordered-map) membership-only: len() is the only observation
    seen: HashSet<u64>,
}

// lint:allow(unordered-map)
pub type MarkerWithoutReason = ();

// lint:allow(nonsense) reason text
pub type MarkerWithUnknownRule = ();

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hashmap_in_tests_is_fine() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty());
    }
}
