//! Seeded violations: metrics-registry readback from a protocol
//! crate (rule 5).

pub fn peek(recorder: &pm_obs::Recorder) -> u64 {
    let snap = recorder.read_snapshot();
    drop(snap);
    recorder.read_counter("psc.rounds")
}

pub fn audited(recorder: &pm_obs::Recorder) -> u64 {
    // lint:allow(obs-readback) diagnostic accessor; the value never reaches a transcript
    recorder.read_counter("psc.rounds")
}

#[cfg(test)]
mod tests {
    #[test]
    fn readback_in_tests_is_fine() {
        let r = pm_obs::Recorder::new();
        assert_eq!(r.read_counter("psc.rounds"), 0);
    }
}
