//! Seeded violations: raw std sockets outside the sanctioned wire
//! backend (rule 6).

use std::net::TcpListener;

pub fn listen() -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    drop(listener);
    Ok(())
}

pub fn dial_audited() -> std::io::Result<()> {
    // lint:allow(raw-socket) loopback probe seeded to prove the marker works
    let stream = std::net::TcpStream::connect("127.0.0.1:1")?;
    drop(stream);
    Ok(())
}
