//! Seeded violations: the panic budget (rule 4).

pub fn round(x: Option<u8>) -> u8 {
    let v = x.unwrap();
    let w = Some(v).expect("present");
    if w == 0 {
        panic!("zero is not a share");
    }
    match w {
        255 => unreachable!(),
        _ => w,
    }
}

pub fn infallible(b: &[u8]) -> u64 {
    // lint:allow(panic) the slice is exactly eight bytes by construction
    u64::from_be_bytes(b[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
