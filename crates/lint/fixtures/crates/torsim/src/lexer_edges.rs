//! Lexer stress cases: none of these may produce a finding.

pub fn edges() -> usize {
    /* block /* nested thread_rng */ still a comment */
    let url = "https://example.com/from_entropy?q=1"; // '//' inside the string
    let raw = r#"SystemTime::now() and a " quote "#;
    let deeper = r##"Instant::now() with "# inside"##;
    let ch = '"';
    let esc = '\'';
    let byte = b'"';
    let bytes = b"thread_rng";
    let call_text = "derive_seed(seed, \"net/day{d}\") in a string";
    let r#type = 1u8;
    let life: &'static str = url;
    url.len() + raw.len() + deeper.len() + call_text.len() + life.len() + r#type as usize
        + usize::from(ch == esc) + usize::from(byte == b'x') + bytes.len()
}
