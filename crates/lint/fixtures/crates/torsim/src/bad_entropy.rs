//! Seeded violations: the entropy/wall-clock ban (rule 1).

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn stamp() -> (u64, u64) {
    let wall = std::time::SystemTime::now();
    let mono = std::time::Instant::now();
    (since_epoch(wall), nanos(mono))
}

pub fn reseed() -> u64 {
    let rng = rand::rngs::StdRng::from_entropy();
    first_draw(rng)
}

pub fn allowed_elapsed() {
    // lint:allow(entropy) fixture: a justified wall-clock read
    let _ = std::time::Instant::now();
}

pub fn negatives() -> usize {
    let s = "thread_rng in a string is fine";
    // from_entropy in a comment is fine
    let _epoch = std::time::SystemTime::UNIX_EPOCH;
    s.len()
}
