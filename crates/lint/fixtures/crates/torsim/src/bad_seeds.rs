//! Seeded violations: duplicate derive_seed labels (rule 3).

pub fn day_seed(seed: u64, d: u64) -> u64 {
    derive_seed(seed, &format!("net/day{d}"))
}

pub fn other_day_seed(seed: u64, day: u64) -> u64 {
    derive_seed(seed, &format!("net/day{day}"))
}

pub fn unique(seed: u64) -> u64 {
    derive_seed(seed, "unique/label")
}
