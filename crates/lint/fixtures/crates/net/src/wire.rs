//! Fixture mirror of the sanctioned socket backend: `crates/net/src/
//! wire.rs` is the one file allowed to touch `std::net` (rule 6's
//! structural sanction, the socket analogue of `obs/src/clock.rs`).

use std::net::{TcpListener, TcpStream};

pub fn bind_loopback() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

pub fn dial(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
