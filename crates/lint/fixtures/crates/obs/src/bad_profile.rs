//! Seeded violation: a wall-clock read inside the obs crate but
//! outside `clock.rs` — the rule 1 carve-out is per-file, not
//! per-crate.

pub fn elapsed_ms(start: std::time::Instant) -> u128 {
    let end = std::time::Instant::now();
    end.duration_since(start).as_millis()
}
