//! The sanctioned clock site: rule 1 structurally exempts exactly
//! this path, so neither read below may produce a finding.

pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
